#include "src/core/safe_region.h"

#include <algorithm>
#include <cmath>

#include "src/geom/circle.h"
#include "src/geom/polygon.h"

namespace senn::core {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Shrinks a raw radius by the FP margin scaled to the largest distance the
/// soundness argument touches. Non-positive results mean "no usable region".
double GuardRadius(double raw, double scale) {
  return raw - kSafeRegionFpMargin * (scale + 1.0);
}

}  // namespace

const char* SafeRegionModeName(SafeRegionMode m) {
  switch (m) {
    case SafeRegionMode::kOff:
      return "off";
    case SafeRegionMode::kDisk:
      return "disk";
    case SafeRegionMode::kInsq:
      return "insq";
  }
  return "unknown";
}

SafeRegion SafeRegion::BuildDisk(geom::Vec2 center, const std::vector<RankedPoi>& prefix,
                                 int k) {
  SafeRegion r;
  if (k < 1 || prefix.size() < static_cast<size_t>(k) + 1) return r;
  const double d_k = prefix[static_cast<size_t>(k) - 1].distance;
  const double d_k1 = prefix[static_cast<size_t>(k)].distance;
  // Inside radius (d_{k+1} - d_k)/2 every member is within d_k + delta and
  // every non-member at least d_{k+1} - delta away, so members stay strictly
  // ahead; the margin absorbs distance ulps and forbids computed ties (which
  // would fall to an id tie-break the region cannot evaluate for POIs beyond
  // the prefix). A co-distant pair d_k == d_{k+1} yields guard <= 0: invalid.
  const double guard = GuardRadius(0.5 * (d_k1 - d_k), d_k1);
  if (guard <= 0.0) return r;
  r.mode_ = SafeRegionMode::kDisk;
  r.center_ = center;
  r.k_ = k;
  r.guard_radius_ = guard;
  r.area_ = kPi * guard * guard;
  r.members_.assign(prefix.begin(), prefix.begin() + k);
  return r;
}

SafeRegion SafeRegion::BuildInsq(geom::Vec2 center, const std::vector<RankedPoi>& prefix,
                                 int k, double horizon, std::vector<RankedPoi> rivals) {
  SafeRegion r;
  if (k < 1 || prefix.size() < static_cast<size_t>(k)) return r;
  const double d_k = prefix[static_cast<size_t>(k) - 1].distance;
  // Soundness of the horizon: any POI the fetch did NOT return lies beyond
  // d_k + 2*horizon of the center, so at any p within delta < horizon of the
  // center it is still beyond d_k + 2*horizon - delta > d_k + horizon, while
  // every member is within d_k + delta < d_k + horizon — unseen POIs can
  // never enter the top k inside the guarded horizon. Members versus rivals
  // need no margin at all: Contains() compares distances recomputed at p
  // through RanksBefore, the exact comparisons a snapshot query makes.
  const double guard = GuardRadius(horizon, d_k + 2.0 * horizon);
  if (guard <= 0.0) return r;
  r.mode_ = SafeRegionMode::kInsq;
  r.center_ = center;
  r.k_ = k;
  r.guard_radius_ = guard;
  r.members_.assign(prefix.begin(), prefix.begin() + k);
  // The circle fetch returns the members themselves too; drop them.
  std::erase_if(rivals, [&r](const RankedPoi& cand) {
    for (const RankedPoi& m : r.members_) {
      if (m.id == cand.id) return true;
    }
    return false;
  });
  r.rivals_ = std::move(rivals);
  // Area metric: the horizon disk (inscribed 64-gon, slightly conservative)
  // clipped by each member/rival bisector that can reach it. The bisector of
  // (m, v) passes no closer to the center than (d_v - d_m)/2, so farther
  // pairs cannot cut the disk and are skipped.
  geom::ConvexPolygon poly =
      geom::ConvexPolygon::InscribedInCircle({center, guard}, 64);
  for (const RankedPoi& m : r.members_) {
    for (const RankedPoi& v : r.rivals_) {
      if (0.5 * (v.distance - m.distance) >= guard) continue;
      const geom::Vec2 mid = (m.position + v.position) * 0.5;
      const geom::Vec2 dir = (v.position - m.position).Perp();
      if (!(dir.Norm2() > 0.0)) continue;  // co-located pair: no bisector
      poly = poly.ClipToHalfPlane({mid, mid + dir});
      if (poly.IsEmpty()) break;
    }
    if (poly.IsEmpty()) break;
  }
  r.area_ = poly.Area();
  return r;
}

bool SafeRegion::CoversExact(geom::Vec2 p) const {
  if (!Valid()) return false;
  // Inside the guarded radius no POI outside the known member+rival set can
  // reach the top k (BuildDisk/BuildInsq headers give the two arguments), so
  // ranking the known set at p IS the snapshot answer.
  return geom::Dist(center_, p) < guard_radius_;
}

bool SafeRegion::Contains(geom::Vec2 p) const {
  if (!CoversExact(p)) return false;
  if (mode_ != SafeRegionMode::kInsq || rivals_.empty()) return true;
  // Every member must rank before every rival at p; under the total order
  // that reduces to worst-member vs best-rival, one RanksBefore call on
  // distances recomputed at p (the very values a snapshot query compares).
  double worst_d = 0.0;
  PoiId worst_id = kInvalidPoi;
  bool have_member = false;
  for (const RankedPoi& m : members_) {
    const double d = geom::Dist(p, m.position);
    if (!have_member || RanksBefore(worst_d, worst_id, d, m.id)) {
      worst_d = d;
      worst_id = m.id;
      have_member = true;
    }
  }
  double best_d = 0.0;
  PoiId best_id = kInvalidPoi;
  bool have_rival = false;
  for (const RankedPoi& v : rivals_) {
    const double d = geom::Dist(p, v.position);
    if (!have_rival || RanksBefore(d, v.id, best_d, best_id)) {
      best_d = d;
      best_id = v.id;
      have_rival = true;
    }
  }
  return RanksBefore(worst_d, worst_id, best_d, best_id);
}

std::vector<RankedPoi> SafeRegion::TopKAt(geom::Vec2 p, int k) const {
  // Rank the whole known set (members + rivals) at p. Under Contains the
  // prefix is the members anyway; under CoversExact a rival may have
  // overtaken a member and the merged ranking is what the snapshot answers.
  std::vector<RankedPoi> out = members_;
  out.insert(out.end(), rivals_.begin(), rivals_.end());
  for (RankedPoi& m : out) m.distance = geom::Dist(p, m.position);
  std::sort(out.begin(), out.end(),
            [](const RankedPoi& a, const RankedPoi& b) { return RanksBefore(a, b); });
  // The guard argument only covers the region's own prefix length: ranks
  // beyond k() may be missing unseen POIs even inside the covered disk.
  size_t cap = static_cast<size_t>(k_);
  if (k >= 0 && static_cast<size_t>(k) < cap) cap = static_cast<size_t>(k);
  if (out.size() > cap) out.resize(cap);
  return out;
}

}  // namespace senn::core
