#include "src/core/continuous.h"

#include <cassert>
#include <utility>

#include "src/core/range.h"
#include "src/core/single_peer.h"

namespace senn::core {

const char* StepSourceName(StepSource s) {
  switch (s) {
    case StepSource::kOwnCache:
      return "own-cache";
    case StepSource::kSinglePeer:
      return "single-peer";
    case StepSource::kMultiPeer:
      return "multi-peer";
    case StepSource::kServer:
      return "server";
    case StepSource::kSafeRegion:
      return "safe-region";
    case StepSource::kPeerRegion:
      return "peer-region";
    case StepSource::kUncertain:
      return "uncertain";
    case StepSource::kStepSourceCount:
      break;
  }
  return "unknown";
}

Status ContinuousKnn::ValidateK(int k) {
  // Same convention (and message) as rpc::ValidateKnnRequest: a degenerate k
  // is the caller's bug, never silently answered as k = 1.
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  return Status::OK();
}

ContinuousKnn::ContinuousKnn(const SennProcessor* senn, int k, ContinuousOptions options)
    : senn_(senn), k_(k), options_(options) {
  assert(ValidateK(k).ok() && "ContinuousKnn requires k >= 1; see ValidateK");
}

std::optional<StepResult> ContinuousKnn::TryLocal(geom::Vec2 position) {
  // Fastest path: inside the safe region's covered disk the known
  // member+rival set provably holds the whole top k — one arithmetic test,
  // then rank the known POIs at the new position. (For INSQ this is the
  // influential-set update: the ANSWER may change inside the horizon, the
  // exactness guarantee does not.)
  if (region_.CoversExact(position)) {
    ++stats_.steps;
    ++stats_.safe_region_hits;
    StepResult result;
    result.source = StepSource::kSafeRegion;
    result.neighbors = region_.TopKAt(position, k_);
    return result;
  }
  // Fast path: can the previous result still certify k neighbors here?
  // (The cache is an exact rank prefix at cache_.query_location, so
  // kNN_single against it is sound; no communication happens.)
  if (!cache_.Empty()) {
    CandidateHeap heap(k_);
    VerifySinglePeer(position, cache_, &heap);
    if (heap.HasCertain(k_)) {
      ++stats_.steps;
      ++stats_.own_cache_hits;
      StepResult result;
      result.source = StepSource::kOwnCache;
      result.neighbors.assign(heap.certain().begin(), heap.certain().begin() + k_);
      return result;
    }
  }
  return std::nullopt;
}

StepResult ContinuousKnn::ResolveWithPeers(
    geom::Vec2 position, const std::vector<const CachedResult*>& peer_caches,
    const std::vector<const SafeRegion*>& peer_regions) {
  ++stats_.steps;
  last_region_pages_ = 0;

  // A peer's safe region whose covered disk holds us and whose prefix is at
  // least our k answers exactly without any verification work: ranking its
  // known set at `position` is an exact rank prefix — adopt it as our new
  // cache and seed a client-side region from it.
  if (const SafeRegion* adopted = ChoosePeerRegion(position, peer_regions)) {
    ++stats_.peer_region_hits;
    StepResult result;
    result.source = StepSource::kPeerRegion;
    std::vector<RankedPoi> ranked = adopted->TopKAt(position, adopted->k());
    result.neighbors.assign(ranked.begin(), ranked.begin() + k_);
    cache_.query_location = position;
    cache_.neighbors = std::move(ranked);
    RebuildRegion(position, /*server_grade=*/false);
    result.region_pages = last_region_pages_;
    return result;
  }

  // Slow path: full SENN over the reachable peers (the own cache joins the
  // peer list — it may still contribute certain candidates).
  std::vector<const CachedResult*> peers = peer_caches;
  if (!cache_.Empty()) peers.push_back(&cache_);
  SennOutcome outcome = senn_->Execute(position, k_, peers);
  StepResult result;
  switch (outcome.resolution) {
    case Resolution::kSinglePeer:
      result.source = StepSource::kSinglePeer;
      ++stats_.peer_answers;
      break;
    case Resolution::kMultiPeer:
      result.source = StepSource::kMultiPeer;
      ++stats_.peer_answers;
      break;
    case Resolution::kUncertain:
      // Soundness: an uncertain outcome is best-effort (senn.h), so it must
      // surface as kUncertain — never disguised as a verified peer answer.
      result.source = StepSource::kUncertain;
      ++stats_.uncertain_answers;
      break;
    case Resolution::kServer:
      result.source = StepSource::kServer;
      ++stats_.server_answers;
      break;
  }
  result.neighbors = outcome.neighbors;
  result.einn_accesses = outcome.einn_accesses;
  result.inn_accesses = outcome.inn_accesses;
  result.peers_consulted = outcome.peers_consulted;
  // Refresh the rolling cache with the new certain prefix (cache policy 1),
  // then rebuild the safe region anchored at the answer position. Rival
  // fetches are only sound on server answers (the reply ships them).
  cache_.query_location = position;
  cache_.neighbors = outcome.certain_prefix;
  RebuildRegion(position, outcome.resolution == Resolution::kServer);
  result.region_pages = last_region_pages_;
  return result;
}

StepResult ContinuousKnn::Step(geom::Vec2 position,
                               const std::vector<const CachedResult*>& peer_caches,
                               const std::vector<const SafeRegion*>& peer_regions) {
  if (std::optional<StepResult> local = TryLocal(position)) return *std::move(local);
  return ResolveWithPeers(position, peer_caches, peer_regions);
}

void ContinuousKnn::Prime(const CachedResult& cache) {
  cache_ = cache;
  RebuildRegion(cache_.query_location, /*server_grade=*/true);
  // Priming models a result that already arrived (warm start); its rival
  // fetch rides on that original answer and is not charged to any step.
  last_region_pages_ = 0;
}

void ContinuousKnn::RebuildRegion(geom::Vec2 position, bool server_grade) {
  last_region_pages_ = 0;
  region_ = SafeRegion();
  if (options_.safe_region == SafeRegionMode::kOff) return;
  const std::vector<RankedPoi>& prefix = cache_.neighbors;
  if (options_.safe_region == SafeRegionMode::kInsq && server_grade &&
      prefix.size() >= static_cast<size_t>(k_) && senn_->server() != nullptr) {
    // INSQ rival fetch: every POI of the FULL table within d_k + 2*horizon
    // of the answer position (horizon = the prefix radius d_m). Logical
    // accesses only — the fetch piggybacks on the answering contact, so it
    // is reported as region_pages, not as an extra server query.
    const double d_k = prefix[static_cast<size_t>(k_) - 1].distance;
    const double horizon = prefix.back().distance;
    if (horizon > 0.0) {
      rtree::AccessCounter counter;
      std::vector<RankedPoi> rivals = PrunedCircleQuery(
          senn_->server()->tree(), position, d_k + 2.0 * horizon, 0.0, &counter);
      last_region_pages_ = counter.total();
      region_ =
          SafeRegion::BuildInsq(position, prefix, k_, horizon, std::move(rivals));
    }
  }
  if (!region_.Valid()) {
    // Client-only fallback (and the whole of kDisk mode): the order-k
    // bisector disk needs a certified prefix strictly longer than k.
    region_ = SafeRegion::BuildDisk(position, prefix, k_);
  }
  if (region_.Valid()) ++stats_.regions_built;
}

const SafeRegion* ContinuousKnn::ChoosePeerRegion(
    geom::Vec2 position, const std::vector<const SafeRegion*>& peer_regions) const {
  const SafeRegion* best = nullptr;
  for (const SafeRegion* r : peer_regions) {
    if (r == nullptr || r->k() < k_ || !r->CoversExact(position)) continue;
    if (best == nullptr) {
      best = r;
      continue;
    }
    // Permutation-invariant preference: the longer adoptable prefix, then
    // the closer region center, then lexicographic center coordinates.
    // Written as mirrored strict comparisons so ties fall through to the
    // next key without any floating-point equality test.
    if (r->k() > best->k()) {
      best = r;
      continue;
    }
    if (r->k() < best->k()) continue;
    const double dr = geom::Dist2(r->center(), position);
    const double db = geom::Dist2(best->center(), position);
    if (dr < db) {
      best = r;
      continue;
    }
    if (db < dr) continue;
    if (r->center().x < best->center().x) {
      best = r;
      continue;
    }
    if (best->center().x < r->center().x) continue;
    if (r->center().y < best->center().y) best = r;
  }
  return best;
}

}  // namespace senn::core
