#include "src/core/continuous.h"

#include "src/core/single_peer.h"

namespace senn::core {

const char* StepSourceName(StepSource s) {
  switch (s) {
    case StepSource::kOwnCache:
      return "own-cache";
    case StepSource::kSinglePeer:
      return "single-peer";
    case StepSource::kMultiPeer:
      return "multi-peer";
    case StepSource::kServer:
      return "server";
  }
  return "unknown";
}

ContinuousKnn::ContinuousKnn(const SennProcessor* senn, int k)
    : senn_(senn), k_(std::max(k, 1)) {}

StepResult ContinuousKnn::Step(geom::Vec2 position,
                               const std::vector<const CachedResult*>& peer_caches) {
  ++stats_.steps;
  // Fast path: can the previous result still certify k neighbors here?
  // (The cache is an exact rank prefix at cache_.query_location, so
  // kNN_single against it is sound; no communication happens.)
  if (!cache_.Empty()) {
    CandidateHeap heap(k_);
    VerifySinglePeer(position, cache_, &heap);
    if (heap.HasCertain(k_)) {
      ++stats_.own_cache_hits;
      StepResult result;
      result.source = StepSource::kOwnCache;
      result.neighbors.assign(heap.certain().begin(), heap.certain().begin() + k_);
      return result;
    }
  }

  // Slow path: full SENN over the reachable peers (the own cache joins the
  // peer list — it may still contribute certain candidates).
  std::vector<const CachedResult*> peers = peer_caches;
  if (!cache_.Empty()) peers.push_back(&cache_);
  SennOutcome outcome = senn_->Execute(position, k_, peers);
  StepResult result;
  switch (outcome.resolution) {
    case Resolution::kSinglePeer:
      result.source = StepSource::kSinglePeer;
      ++stats_.peer_answers;
      break;
    case Resolution::kMultiPeer:
    case Resolution::kUncertain:
      result.source = StepSource::kMultiPeer;
      ++stats_.peer_answers;
      break;
    case Resolution::kServer:
      result.source = StepSource::kServer;
      ++stats_.server_answers;
      break;
  }
  result.neighbors = outcome.neighbors;
  // Refresh the rolling cache with the new certain prefix (cache policy 1).
  cache_.query_location = position;
  cache_.neighbors = outcome.certain_prefix;
  return result;
}

}  // namespace senn::core
