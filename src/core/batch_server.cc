#include "src/core/batch_server.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace senn::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Canonical content order within a tile: co-located requests with equal
/// parameters are interchangeable, so sorting by content (input index as the
/// final tie) makes the cluster assignment invariant under input shuffles.
/// Not a distance rank — a total order over request tuples.
bool ContentBefore(const BatchQuery& a, const BatchQuery& b) {
  if (a.q.x != b.q.x) return a.q.x < b.q.x;
  if (a.q.y != b.q.y) return a.q.y < b.q.y;
  if (a.k != b.k) return a.k < b.k;
  if (a.already_certified != b.already_certified) {
    return a.already_certified < b.already_certified;
  }
  if (a.bounds.lower.has_value() != b.bounds.lower.has_value()) {
    return b.bounds.lower.has_value();
  }
  if (a.bounds.lower.has_value() && *a.bounds.lower != *b.bounds.lower) {
    return *a.bounds.lower < *b.bounds.lower;
  }
  if (a.bounds.lower_id_cut != b.bounds.lower_id_cut) {
    return a.bounds.lower_id_cut < b.bounds.lower_id_cut;
  }
  if (a.bounds.upper.has_value() != b.bounds.upper.has_value()) {
    return b.bounds.upper.has_value();
  }
  if (a.bounds.upper.has_value() && *a.bounds.upper != *b.bounds.upper) {
    return *a.bounds.upper < *b.bounds.upper;
  }
  return false;
}

}  // namespace

BatchServer::BatchServer(SpatialServer* server, BatchOptions options)
    : server_(server), options_(options) {
  if (options_.cluster_cell_m <= 0.0) options_.cluster_cell_m = 1.0;
  if (options_.max_group < 1) options_.max_group = 1;
}

std::vector<std::vector<size_t>> BatchServer::FormClusters(
    const std::vector<BatchQuery>& queries) const {
  // The neighbor_grid tiling idiom, keyed sparsely: queries land in square
  // tiles by floor division, so co-located points share a tile and a point
  // exactly on a boundary belongs to the higher tile. std::map (never a hash
  // map) fixes the tile iteration order to (x-tile, y-tile).
  std::map<std::pair<int64_t, int64_t>, std::vector<size_t>> tiles;
  const double cell = options_.cluster_cell_m;
  for (size_t i = 0; i < queries.size(); ++i) {
    const geom::Vec2 p = queries[i].q;
    tiles[{static_cast<int64_t>(std::floor(p.x / cell)),
           static_cast<int64_t>(std::floor(p.y / cell))}]
        .push_back(i);
  }
  std::vector<std::vector<size_t>> clusters;
  for (auto& [tile, members] : tiles) {
    std::sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      if (ContentBefore(queries[a], queries[b])) return true;
      if (ContentBefore(queries[b], queries[a])) return false;
      return a < b;  // content-identical: interchangeable, keep input order
    });
    for (size_t begin = 0; begin < members.size();
         begin += static_cast<size_t>(options_.max_group)) {
      const size_t end =
          std::min(members.size(), begin + static_cast<size_t>(options_.max_group));
      clusters.emplace_back(members.begin() + static_cast<ptrdiff_t>(begin),
                            members.begin() + static_cast<ptrdiff_t>(end));
    }
  }
  return clusters;
}

std::vector<ServerReply> BatchServer::AnswerBatch(const std::vector<BatchQuery>& queries,
                                                  obs::QueryTracer* tracer,
                                                  obs::MetricsRegistry* metrics,
                                                  std::vector<size_t>* cluster_sizes) {
  std::vector<ServerReply> replies(queries.size());
  for (const std::vector<size_t>& members : FormClusters(queries)) {
    if (cluster_sizes != nullptr) cluster_sizes->push_back(members.size());
    if (members.size() == 1) {
      // Sequential delegation: a cluster of one is exactly a QueryKnn call
      // (ServerStats bookkeeping included), which is what makes batch size 1
      // byte-identical to today's server path.
      const BatchQuery& bq = queries[members.front()];
      replies[members.front()] =
          server_->QueryKnn(bq.q, bq.k, bq.bounds, bq.already_certified, tracer);
      ++stats_.queries;
      ++stats_.singleton_queries;
      continue;
    }
    AnswerCluster(queries, members, &replies, tracer, metrics);
  }
  return replies;
}

void BatchServer::AnswerCluster(const std::vector<BatchQuery>& queries,
                                const std::vector<size_t>& members,
                                std::vector<ServerReply>* replies,
                                obs::QueryTracer* tracer, obs::MetricsRegistry* metrics) {
  const rtree::RStarTree& tree = server_->tree();
  storage::NodePager* pager = server_->mutable_pager();
  const rtree::AccessCountMode mode = server_->count_mode();
  const uint32_t m = static_cast<uint32_t>(members.size());

  obs::ScopedSpan span(tracer, obs::Phase::kServerBatchEinn);

  // Per-query prune state: the sequential BestFirstNnIterator's bounds
  // translated to the shared traversal, plus the bounded candidate heap that
  // replaces the global queue's object entries.
  struct PerQuery {
    const BatchQuery* in = nullptr;
    ServerReply* out = nullptr;
    int needed = 0;
    // Dynamic top-k bound: best k object distances fed to this query so far
    // (lower-bound-known objects included, exactly like the sequential
    // iterator).
    std::priority_queue<double> best;
    // Best `needed` eligible objects so far: max-heap under the system
    // (distance, id) rank, front = worst.
    std::vector<rtree::Neighbor> cand;
  };
  std::vector<PerQuery> pq(m);
  for (uint32_t j = 0; j < m; ++j) {
    const BatchQuery& bq = queries[members[j]];
    pq[j].in = &bq;
    pq[j].out = &(*replies)[members[j]];
    pq[j].needed = std::max(0, bq.k - bq.already_certified);
  }

  auto by_rank = [](const rtree::Neighbor& a, const rtree::Neighbor& b) {
    return RanksBefore(a.distance, a.object.id, b.distance, b.object.id);
  };
  auto feed = [](PerQuery& p, double d) {
    if (p.in->k <= 0) return;  // degenerate request: no bound to maintain
    if (static_cast<int>(p.best.size()) < p.in->k) {
      p.best.push(d);
    } else if (d < p.best.top()) {
      p.best.pop();
      p.best.push(d);
    }
  };
  auto eff_upper = [](const PerQuery& p) {
    double upper = p.in->bounds.upper.value_or(kInf);
    if (p.in->k > 0 && static_cast<int>(p.best.size()) >= p.in->k) {
      upper = std::min(upper, p.best.top());
    }
    return upper;
  };
  // The live-query prune rule: a query still wants a node unless the upper
  // bound, downward (MAXDIST < lower) pruning, or its full candidate heap
  // rules the node out. MINDIST == the worst candidate's distance survives
  // the last test: the node may hold a co-distant object with a smaller id.
  auto wants_node = [&](const PerQuery& p, double mindist, double maxdist) {
    if (p.needed <= 0) return false;
    if (mindist > eff_upper(p)) return false;
    if (p.in->bounds.lower.has_value() && maxdist < *p.in->bounds.lower) return false;
    if (static_cast<int>(p.cand.size()) >= p.needed &&
        mindist > p.cand.front().distance) {
      return false;
    }
    return true;
  };

  // The shared node queue: min-over-wanting-queries MINDIST, equal keys in
  // push order (node identity, i.e. the pointer, never enters the order).
  struct NodeItem {
    double key = 0.0;
    uint64_t seq = 0;
    const rtree::RStarTree::Node* node = nullptr;
    geom::Mbr mbr;
    std::vector<uint32_t> wanted;  // cluster-local indices, push-time
  };
  struct NodeGreater {
    bool operator()(const NodeItem& a, const NodeItem& b) const {
      // senn-lint: allow(L5-float-eq): strict-weak-order tie detection —
      // both keys come from the same MinDist code path, so equal means
      // bit-identical, and exact ties must fall through to the FIFO rule.
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<NodeItem, std::vector<NodeItem>, NodeGreater> queue;
  uint64_t push_seq = 0;

  rtree::AccessCounter cluster_counter;
  // One fetch per node for the whole cluster (the double-charge fix):
  // attributed to the first wanting query, classified shared when >= 2
  // queries read it. Per-query misses therefore partition the cluster's
  // unique-page misses.
  auto charge = [&](const rtree::RStarTree::Node* node,
                    const std::vector<uint32_t>& wanted) {
    return rtree::ChargeBatchNodeAccess(node, &pq[wanted.front()].out->einn_accesses,
                                        &cluster_counter, wanted.size() >= 2, pager);
  };

  auto expand = [&](const rtree::RStarTree::Node* node,
                    const std::vector<uint32_t>& wanted) {
    for (const rtree::RStarTree::Slot& s : node->slots) {
      if (node->IsLeaf()) {
        for (uint32_t j : wanted) {
          PerQuery& p = pq[j];
          double d = geom::Dist(p.in->q, s.object.position);
          // Lower-bound-known objects feed the dynamic bound but are never
          // reported — including the boundary id-cut rule of the sequential
          // iterator (knn.cc): a co-distant object past the client's rank
          // cut lost the id tie-break and must still be reported.
          if (p.in->bounds.lower.has_value() &&
              (d < *p.in->bounds.lower ||
               // senn-lint: allow(L5-float-eq): bit-exact boundary tie —
               // the client's lower bound is a cached radius from the same
               // Dist() chain; same rule as the sequential EINN leaf scan.
               (d == *p.in->bounds.lower && s.object.id <= p.in->bounds.lower_id_cut))) {
            feed(p, d);
            continue;
          }
          if (d > eff_upper(p)) continue;
          feed(p, d);
          if (p.needed <= 0) continue;
          if (static_cast<int>(p.cand.size()) < p.needed) {
            p.cand.push_back({s.object, d});
            std::push_heap(p.cand.begin(), p.cand.end(), by_rank);
          } else if (RanksBefore(d, s.object.id, p.cand.front().distance,
                                 p.cand.front().object.id)) {
            std::pop_heap(p.cand.begin(), p.cand.end(), by_rank);
            p.cand.back() = {s.object, d};
            std::push_heap(p.cand.begin(), p.cand.end(), by_rank);
          }
        }
      } else {
        NodeItem item;
        item.node = s.child.get();
        item.mbr = s.mbr;
        double key = kInf;
        for (uint32_t j : wanted) {
          PerQuery& p = pq[j];
          const double mindist = s.mbr.MinDist(p.in->q);
          if (!wants_node(p, mindist, s.mbr.MaxDist(p.in->q))) continue;
          item.wanted.push_back(j);
          key = std::min(key, mindist);
        }
        if (item.wanted.empty()) continue;
        item.key = key;
        item.seq = push_seq++;
        if (mode == rtree::AccessCountMode::kOnEnqueue) {
          // Enqueue accounting fetches the child as it enters the queue;
          // the pin is transient (expansion reads the queued copy).
          if (charge(item.node, item.wanted)) pager->Unpin(item.node);
        }
        queue.push(std::move(item));
      }
    }
  };

  // The root is always fetched once for the cluster, in both accounting
  // modes — the batch mirror of the sequential constructor's root charge.
  {
    std::vector<uint32_t> all(m);
    for (uint32_t j = 0; j < m; ++j) all[j] = j;
    const bool pinned = charge(tree.root(), all);
    expand(tree.root(), all);
    if (pinned) pager->Unpin(tree.root());
  }

  while (!queue.empty()) {
    NodeItem item = queue.top();
    queue.pop();
    // Pop-time re-check against the tightened per-query state: a node every
    // pushing query has since pruned is skipped — without a fetch in expand
    // accounting (enqueue accounting already charged it, like the
    // sequential iterator charges queued-but-prunable nodes).
    std::vector<uint32_t> live;
    live.reserve(item.wanted.size());
    for (uint32_t j : item.wanted) {
      const PerQuery& p = pq[j];
      if (wants_node(p, item.mbr.MinDist(p.in->q), item.mbr.MaxDist(p.in->q))) {
        live.push_back(j);
      }
    }
    if (live.empty()) continue;
    bool pinned = false;
    if (mode == rtree::AccessCountMode::kOnExpand) pinned = charge(item.node, live);
    expand(item.node, live);
    if (pinned) pager->Unpin(item.node);
  }

  // Per-query finalization: candidates in ascending rank order become the
  // reply, then the comparison INN run (never through the pool) and the
  // ServerStats fold — exactly what the sequential QueryKnn records.
  for (uint32_t j = 0; j < m; ++j) {
    PerQuery& p = pq[j];
    std::sort(p.cand.begin(), p.cand.end(), by_rank);
    p.out->neighbors.reserve(p.cand.size());
    for (const rtree::Neighbor& n : p.cand) {
      p.out->neighbors.push_back({n.object.id, n.object.position, n.distance});
    }
    rtree::BestFirstNnIterator inn(tree, p.in->q, rtree::PruneBounds{}, mode, p.in->k);
    for (int i = 0; i < p.in->k; ++i) {
      if (!inn.Next().has_value()) break;
    }
    p.out->inn_accesses = inn.accesses();
    server_->RecordAnsweredQuery(p.out->einn_accesses, p.out->inn_accesses);
  }

  stats_.queries += m;
  stats_.batched_queries += m;
  stats_.clusters += 1;
  stats_.shared_traversal += cluster_counter;

  span.AddArg("queries", m);
  span.AddArg("pages", cluster_counter.total());
  span.AddArg("misses", cluster_counter.misses());
  span.AddArg("shared_misses", cluster_counter.shared_misses);
  if (metrics != nullptr) {
    metrics->Inc("batch/clusters");
    metrics->Inc("batch/batched_queries", m);
    metrics->Observe("batch/cluster_size", static_cast<double>(m));
    metrics->Observe("batch/cluster_pages", static_cast<double>(cluster_counter.total()));
    metrics->Observe("batch/cluster_misses",
                     static_cast<double>(cluster_counter.misses()));
    metrics->Observe("batch/cluster_shared_misses",
                     static_cast<double>(cluster_counter.shared_misses));
  }
}

}  // namespace senn::core
