#include "src/core/single_peer.h"

namespace senn::core {

VerifyStats VerifySinglePeer(geom::Vec2 q, const CachedResult& peer, CandidateHeap* heap) {
  VerifyStats stats;
  if (peer.Empty()) return stats;
  const double delta = geom::Dist(q, peer.query_location);
  const double radius = peer.Radius();
  // Lemma 3.2 certifies a cached POI when its distance d satisfies
  // d + delta <= radius: any POI ranking before it lies within `radius` of
  // the peer and is therefore cached. That premise has one exception. The
  // cache is a (distance, id) rank prefix around the peer's location, so
  // when its boundary cuts through a ring of co-distant POIs, the ties that
  // lost the id comparison are at distance exactly `radius` yet UNCACHED.
  // At d + delta == radius such an uncached tie y can beat the candidate c
  // only if the triangle inequality is tight (dist(peer,y) == radius and
  // dist(q,y) == d) and last_id < y.id < c.id, where last_id is the id of
  // the worst-ranked cached entry. Certification at exact equality is thus
  // sound precisely when no integer id fits in that gap (c.id <= last_id+1
  // — which covers the everyday case c == last entry). Strict inequality
  // needs no guard, and exact equality with delta > 0 has measure zero for
  // continuous POI positions, so this changes nothing off the degenerate
  // (e.g. lattice) configurations it exists for.
  const PoiId last_id = peer.neighbors.back().id;
  for (const RankedPoi& n : peer.neighbors) {
    double d = geom::Dist(q, n.position);
    RankedPoi candidate{n.id, n.position, d};
    ++stats.candidates;
    const double reach = d + delta;
    // senn-lint: allow(L5-float-eq): the boundary-tie guard above is only
    // sound at EXACT equality — `reach` and `radius` both derive from
    // geom::Dist over the same coordinates, so a true tie is bit-identical
    // and an epsilon would certify unsound candidates.
    if (reach < radius || (reach == radius && n.id <= last_id + 1)) {
      heap->InsertCertain(candidate);
      ++stats.certified;
    } else {  // Lemma 3.1
      heap->InsertUncertain(candidate);
      ++stats.uncertain;
    }
  }
  return stats;
}

}  // namespace senn::core
