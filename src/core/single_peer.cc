#include "src/core/single_peer.h"

namespace senn::core {

VerifyStats VerifySinglePeer(geom::Vec2 q, const CachedResult& peer, CandidateHeap* heap) {
  VerifyStats stats;
  if (peer.Empty()) return stats;
  const double delta = geom::Dist(q, peer.query_location);
  const double radius = peer.Radius();
  for (const RankedPoi& n : peer.neighbors) {
    double d = geom::Dist(q, n.position);
    RankedPoi candidate{n.id, n.position, d};
    ++stats.candidates;
    if (d + delta <= radius) {  // Lemma 3.2
      heap->InsertCertain(candidate);
      ++stats.certified;
    } else {  // Lemma 3.1
      heap->InsertUncertain(candidate);
      ++stats.uncertain;
    }
  }
  return stats;
}

}  // namespace senn::core
