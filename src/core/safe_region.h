// Safe regions for continuous (moving) kNN queries.
//
// A SafeRegion is built at the moment a query is answered with a certified
// rank prefix; any later position strictly inside the region is guaranteed
// to have EXACTLY the same top-k set, so a moving host can answer locally
// with a pure-arithmetic membership test — no peer harvest, no heap
// verification, no server contact. Two constructions:
//
//   * Disk (client-only): the classical order-k bisector seed — a disk of
//     radius (d_{k+1} - d_k) / 2 around the answer position. Inside it every
//     member beats every non-member by the triangle inequality, using only
//     the certified prefix the client already holds. Provably this can never
//     outreach the Lemma 3.2 own-cache recheck (both are limited by the same
//     cached information; DESIGN.md "Safe-region soundness" works out the
//     bound), so its value is the O(1) test, not fewer server contacts.
//
//   * INSQ (server-assisted): the influential-neighbor construction of
//     PAPERS.md's INSQ system ("An Influential Neighbor Set Based Moving kNN
//     Query Processing System"). The server, which sees the FULL POI table,
//     ships every rival POI within d_k + 2*horizon of the answer position.
//     Inside the guarded horizon disk no unseen POI can enter the top k, so
//     the member+rival set answers EVERY position there by local ranking
//     (CoversExact/TopKAt) — the answer may change as bisectors are crossed,
//     but it never needs the server. Because the rival set breaks the
//     client-information bound, this coverage reaches ~d_m instead of
//     (d_m - d_k)/2 and genuinely reduces server contacts
//     (bench_ext_continuous gates on it). Contains(p) is the tighter
//     unchanged-answer cell (horizon disk ∩ "every member still ranks before
//     every rival").
//
// Exactness contract: CoversExact(p) implies TopKAt(p, k) is BITWISE
// identical (ids, positions, distances) to a fresh snapshot SENN/server
// query at p; Contains(p) additionally implies that top-k SET equals the
// members. Member/rival comparisons go through core::RanksBefore on
// geom::Dist values recomputed at p — the very comparisons a snapshot query
// makes — so they carry no floating-point slack at all. Only the
// disk/horizon radii guard against POIs the region has never seen; those are
// shrunk by a conservative margin (kSafeRegionFpMargin) that dominates the
// few-ulp error of Dist.
#pragma once

#include <vector>

#include "src/core/types.h"
#include "src/geom/vec2.h"

namespace senn::core {

/// Which safe-region construction a continuous query maintains.
enum class SafeRegionMode {
  kOff = 0,   // no region; fast path is the Lemma 3.2 recheck only
  kDisk = 1,  // client-only (d_{k+1} - d_k)/2 disk
  kInsq = 2,  // server-assisted influential-neighbor cell
};

const char* SafeRegionModeName(SafeRegionMode m);

/// Relative margin subtracted from the disk/horizon radii: absorbs the
/// few-ulp error of computed distances AND rules out computed ties against
/// unseen POIs (a tie would hand the decision to the id tie-break, which a
/// region test cannot reproduce for POIs it does not know). Distances err by
/// a few ulps (~1e-12 relative); 1e-9 leaves three orders of magnitude of
/// headroom while shrinking a 1 km region by a micrometer.
inline constexpr double kSafeRegionFpMargin = 1e-9;

/// A conservative validity region for one answered kNN query.
///
/// Default-constructed regions are invalid (Contains is always false), which
/// doubles as the "no region available" state.
class SafeRegion {
 public:
  SafeRegion() = default;

  /// Client-only disk region. `prefix` must be an exact ascending rank
  /// prefix at `center` (the CachedResult invariant) with more than `k`
  /// entries; the guard radius is (prefix[k] - prefix[k-1]) / 2 minus the FP
  /// margin. Returns an invalid region when the prefix is too short, k < 1,
  /// or the guarded radius is not positive (co-distant boundary ties).
  static SafeRegion BuildDisk(geom::Vec2 center, const std::vector<RankedPoi>& prefix,
                              int k);

  /// Server-assisted INSQ region. `prefix` as above (>= k entries);
  /// `horizon` is the reach cap (meters): the caller must have collected in
  /// `rivals` EVERY POI of the database within distance
  /// prefix[k-1].distance + 2 * horizon of `center`, except the k members
  /// (member ids found in `rivals` are dropped here). Inside the region —
  /// distance to center below the guarded horizon AND every member ranking
  /// before every rival at the test point — the top-k set is exactly the
  /// members. Invalid when the prefix is short, k < 1, or the guarded
  /// horizon is not positive.
  static SafeRegion BuildInsq(geom::Vec2 center, const std::vector<RankedPoi>& prefix,
                              int k, double horizon, std::vector<RankedPoi> rivals);

  bool Valid() const { return k_ >= 1 && guard_radius_ > 0.0; }
  /// True iff the top-k set at p is guaranteed unchanged (still exactly the
  /// members). Pure arithmetic: one Dist to the center plus, for INSQ, one
  /// Dist per member and rival. Always false for invalid regions.
  bool Contains(geom::Vec2 p) const;

  /// True iff TopKAt(p, k()) is guaranteed exact — the known member+rival
  /// set provably contains the whole top k() at p. This is the guarded
  /// disk/horizon test alone (one Dist), a superset of Contains: between the
  /// two, the answer has changed but is still locally computable. Always
  /// false for invalid regions.
  bool CoversExact(geom::Vec2 p) const;

  /// The top-min(k, k()) at p over the known member+rival set, ascending
  /// under the system rank order with distances recomputed at p — bitwise
  /// identical to a fresh snapshot query PROVIDED CoversExact(p). (Outside
  /// the covered disk it merely ranks the known POIs.)
  std::vector<RankedPoi> TopKAt(geom::Vec2 p, int k) const;

  SafeRegionMode mode() const { return mode_; }
  int k() const { return k_; }
  geom::Vec2 center() const { return center_; }
  /// The guarded disk/horizon radius (meters); 0 for invalid regions.
  double guard_radius() const { return guard_radius_; }
  /// Conservative region area (m^2): pi r^2 for the disk; for INSQ the
  /// horizon disk clipped by every member/rival bisector that can cut it
  /// (polygonized — a metric for reports, never used for soundness).
  double Area() const { return area_; }
  const std::vector<RankedPoi>& members() const { return members_; }
  const std::vector<RankedPoi>& rivals() const { return rivals_; }

 private:
  SafeRegionMode mode_ = SafeRegionMode::kOff;
  geom::Vec2 center_;
  int k_ = 0;
  double guard_radius_ = 0.0;
  double area_ = 0.0;
  /// The top-k at center (positions carried verbatim from the POI table).
  std::vector<RankedPoi> members_;
  /// INSQ rival candidates (distances as computed at center, ascending).
  std::vector<RankedPoi> rivals_;
};

}  // namespace senn::core
