#include "src/core/snnn.h"

#include <algorithm>

namespace senn::core {

SennNnSource::SennNnSource(const SennProcessor* senn, geom::Vec2 q,
                           std::vector<const CachedResult*> peers)
    : senn_(senn), q_(q), peers_(std::move(peers)) {}

std::vector<RankedPoi> SennNnSource::TopK(int m) {
  SennOutcome outcome = senn_->Execute(q_, m, peers_);
  last_resolution_ = outcome.resolution;
  return outcome.neighbors;
}

ServerNnSource::ServerNnSource(SpatialServer* server, geom::Vec2 q)
    : server_(server), q_(q) {}

std::vector<RankedPoi> ServerNnSource::TopK(int m) {
  ServerReply reply = server_->QueryKnn(q_, m);
  return reply.neighbors;
}

SnnnProcessor::SnnnProcessor(const roadnet::Graph* graph,
                             const roadnet::EdgeLocator* locator, SnnnOptions options,
                             roadnet::DistanceOracle* oracle)
    : graph_(graph), locator_(locator), options_(options), oracle_(oracle) {}

std::vector<NetworkRankedPoi> SnnnProcessor::Execute(geom::Vec2 q, int k,
                                                     EuclideanNnSource* source) const {
  std::vector<NetworkRankedPoi> result;
  if (k <= 0) return result;

  roadnet::EdgePoint q_on_net = locator_->Nearest(q);
  if (!q_on_net.IsValid()) return result;  // no road network: no answer
  // Default backend: a fresh incremental Dijkstra per query, exactly the
  // historical inline NetworkDistanceOracle (byte-identical goldens).
  roadnet::DijkstraOracle fallback(graph_);
  roadnet::DistanceOracle* oracle = oracle_ != nullptr ? oracle_ : &fallback;
  oracle->SetSource(q_on_net);

  auto network_distance = [&](geom::Vec2 p) {
    return oracle->DistanceTo(locator_->Nearest(p));
  };
  // Network distances rank through the same (distance, id) order as the
  // Euclidean paths: two POIs on the same shortest-path ring would otherwise
  // rank by the seed source's emission order.
  auto by_network = [](const NetworkRankedPoi& a, const NetworkRankedPoi& b) {
    return RanksBefore(a.network, a.id, b.network, b.id);
  };

  // Seed: k certain Euclidean NNs (Algorithm 2, lines 2-7).
  std::vector<RankedPoi> seed = source->TopK(k);
  if (seed.empty()) return result;
  for (const RankedPoi& n : seed) {
    result.push_back({n.id, n.position, n.distance, network_distance(n.position)});
  }
  std::sort(result.begin(), result.end(), by_network);
  double s_bound = result.back().network;

  // IER refinement (lines 9-18): pull the next Euclidean NN until it falls
  // beyond the search region.
  for (int i = 1; i <= options_.max_expansions; ++i) {
    std::vector<RankedPoi> extended = source->TopK(k + i);
    if (static_cast<int>(extended.size()) < k + i) break;  // data set exhausted
    const RankedPoi& next = extended.back();
    if (next.distance > s_bound) break;  // Euclidean lower bound: done
    double nd = network_distance(next.position);
    if (nd < result.back().network) {
      result.back() = {next.id, next.position, next.distance, nd};
      std::sort(result.begin(), result.end(), by_network);
      s_bound = result.back().network;
    }
  }
  return result;
}

}  // namespace senn::core
