// Sharing-based local spatial join — the second query type the paper's
// future-work section names ("range and spatial join searches").
//
// The query: around position q, which pairs (a from layer A, b from layer B)
// with a within `radius` of q satisfy Dist(a, b) <= `pair_distance`?
// (E.g., "restaurants near me with parking within 100 m".)
//
// Sharing argument: the relevant A-objects all lie in C(q, radius) and the
// relevant B-objects in C(q, radius + pair_distance). Each side reduces to a
// sharing-based range query (core/range.h): if the peers' certain regions
// cover the respective disk, that side is complete from caches alone; the
// join is then computed locally with zero server contact. Otherwise the
// server fills the gap with certain-radius pruning.
#pragma once

#include <vector>

#include "src/core/range.h"
#include "src/core/types.h"

namespace senn::core {

/// One joined pair.
struct PoiPair {
  RankedPoi a;  // distance field = Dist(q, a)
  RankedPoi b;  // distance field = Dist(q, b)
  double pair_distance = 0.0;
};

/// Outcome of one sharing-based join.
struct JoinOutcome {
  /// Pairs, sorted by (a.id, b.id). Exact and complete.
  std::vector<PoiPair> pairs;
  /// Range-query resolution of each side.
  RangeResolution a_resolution = RangeResolution::kServer;
  RangeResolution b_resolution = RangeResolution::kServer;
  /// True iff neither side contacted a server.
  bool fully_local = false;
};

/// Executes sharing-based joins between two POI layers.
class SharingJoinProcessor {
 public:
  /// The servers index the two layers; both must outlive the processor.
  SharingJoinProcessor(SpatialServer* layer_a, SpatialServer* layer_b);

  /// Runs the join described above. `peers_a` / `peers_b` are the cached
  /// results reachable for each layer (a deployment would have hosts cache
  /// both layers; tests may pass the same list twice).
  JoinOutcome Execute(geom::Vec2 q, double radius, double pair_distance,
                      const std::vector<const CachedResult*>& peers_a,
                      const std::vector<const CachedResult*>& peers_b) const;

 private:
  RangeProcessor range_a_;
  RangeProcessor range_b_;
};

}  // namespace senn::core
