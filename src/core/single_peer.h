// Single-peer nearest-neighbor verification (kNN_single, Section 3.2.1).
//
// For a query host Q and one peer cache entry (query location P, certain
// neighbors n_1..n_m ascending, radius r = Dist(P, n_m)):
//   Lemma 3.2:  Dist(Q, n_i) + Dist(Q, P) <= r  =>  n_i is a certain NN of Q
//   Lemma 3.1:  otherwise n_i cannot be verified  =>  uncertain candidate
// Certain objects enter the heap with exact ranks (Lemma 3.7): the certified
// subset of a peer's cache is always a rank prefix of Q's true kNN.
#pragma once

#include "src/core/candidate_heap.h"
#include "src/core/types.h"
#include "src/geom/vec2.h"

namespace senn::core {

/// Verifies every neighbor in `peer` against query point `q`, inserting the
/// results into `heap`. Returns per-pass statistics.
VerifyStats VerifySinglePeer(geom::Vec2 q, const CachedResult& peer, CandidateHeap* heap);

}  // namespace senn::core
