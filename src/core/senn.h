// SENN — Sharing-based Euclidean distance Nearest Neighbor query
// (Algorithm 1 of the paper).
//
// Given the cached results collected from reachable peers, SENN:
//   1. sorts them by the distance of their cached query locations to Q
//      (Heuristic 3.3),
//   2. runs kNN_single over each peer in order, stopping as soon as k
//      certain objects are in the heap,
//   3. otherwise runs kNN_multiple over the merged certain region,
//   4. otherwise (optionally) accepts an uncertain answer, and finally
//   5. forwards the query to the spatial database server together with the
//      branch-expanding bounds derived from the heap state (Section 3.3),
//      merging the server's reply with the locally certified prefix.
#pragma once

#include <vector>

#include "src/core/candidate_heap.h"
#include "src/core/multi_peer.h"
#include "src/core/server.h"
#include "src/core/single_peer.h"
#include "src/core/types.h"

namespace senn::obs {
class QueryTracer;
class ScopedSpan;
}

namespace senn::core {

/// How a query was ultimately resolved (the classification the paper's
/// Figures 9-16 report).
enum class Resolution {
  kSinglePeer = 0,   // answered via kNN_single
  kMultiPeer = 1,    // answered via kNN_multiple
  kUncertain = 2,    // client accepted an unverified (uncertain) answer
  kServer = 3,       // forwarded to the spatial database server
};

const char* ResolutionName(Resolution r);

/// SENN tuning parameters.
struct SennOptions {
  /// Heap capacity / number of POIs requested from the server. Per the
  /// paper's cache policy 2 this is usually the cache capacity C_Size, which
  /// must be >= the user's k. Values below k are raised to k.
  int server_request_k = 10;
  /// Accept a full heap of (partly) uncertain candidates instead of asking
  /// the server (Algorithm 1, line 15). Off by default: the simulation
  /// measures server load under exact answers.
  bool accept_uncertain = false;
  /// Multi-peer verification configuration.
  MultiPeerOptions multi_peer;
  /// Skip the kNN_multiple stage entirely (ablation switch).
  bool enable_multi_peer = true;
  /// Process peers in Heuristic 3.3 order (ablation switch; off = given order).
  bool sort_peers = true;
  /// Stop consulting peers as soon as k certain objects are verified. Saves
  /// verification work (what Heuristic 3.3 is for) at the cost of a thinner
  /// cached prefix. Off by default: Algorithm 1 processes every peer, and
  /// fatter caches help the neighborhood.
  bool early_exit = false;
  /// Extension beyond the paper: when the heap is full (an upper bound
  /// exists), ship the entire certain region R_c (the peer disks) to the
  /// server instead of only the scalar bounds, enabling region-covered
  /// subtree pruning (SpatialServer::QueryKnnWithRegion). Falls back to the
  /// scalar protocol when no upper bound is available. Off by default: the
  /// paper's protocol ships two scalars.
  bool ship_region = false;
};

/// Outcome of one SENN execution.
struct SennOutcome {
  Resolution resolution = Resolution::kServer;
  /// Final neighbors, ascending by distance to Q. Exactly the true top-k
  /// unless resolution == kUncertain (then candidates are best-effort) or
  /// the database holds fewer than k POIs.
  std::vector<RankedPoi> neighbors;
  /// All certain objects discovered (a rank prefix, possibly longer than k);
  /// this is what the host caches afterwards.
  std::vector<RankedPoi> certain_prefix;
  /// Heap state just before the server was contacted (kSolved otherwise).
  HeapState heap_state = HeapState::kEmpty;
  /// Bounds shipped to the server (empty unless resolution == kServer).
  rtree::PruneBounds bounds;
  /// Page accesses (valid when the server was contacted).
  rtree::AccessCounter einn_accesses;
  rtree::AccessCounter inn_accesses;
  /// Verification work performed (for the ablation benches).
  VerifyStats single_peer_stats;
  VerifyStats multi_peer_stats;
  int peers_consulted = 0;
};

/// A SENN execution paused at the server boundary (the batched-answering
/// seam). `Prepare` runs every client-side stage; when the query needs the
/// scalar-protocol server contact it stops there with `needs_server` set and
/// the exact QueryKnn arguments captured, so a driver can group many pending
/// queries into one core::BatchServer call and hand each reply to `Finish`.
/// Queries resolved locally (and region-protocol contacts, which have no
/// batched path) come back complete with `needs_server` false.
struct PendingSenn {
  bool needs_server = false;
  SennOutcome outcome;
  /// The QueryKnn arguments (valid when needs_server): query point, the
  /// user's k, the heap capacity actually requested from the server, and the
  /// certified rank prefix backing outcome.bounds.
  geom::Vec2 q;
  int k = 0;
  int heap_capacity = 0;
  std::vector<RankedPoi> certain;
};

/// Executes SENN queries against a fixed server. The server must outlive the
/// processor. Thread-compatible (no shared mutable state besides the server).
class SennProcessor {
 public:
  SennProcessor(SpatialServer* server, SennOptions options);

  /// Runs Algorithm 1 for query point q and result size k over the given
  /// peer caches (nullptr / empty entries are ignored). `tracer`, when
  /// given, receives one span per executed stage (verify_single,
  /// verify_multi, heap_classify, server_einn); null is the zero-cost
  /// default. Exactly Prepare + QueryKnn + Finish: the split path with an
  /// immediate server call produces byte-identical outcomes and traces.
  SennOutcome Execute(geom::Vec2 q, int k,
                      const std::vector<const CachedResult*>& peer_caches,
                      obs::QueryTracer* tracer = nullptr) const;

  /// First half of Execute: all peer stages, heap classification, bounds
  /// computation, and any region-protocol contact. When the result has
  /// `needs_server` set, the caller owes a
  /// `server->QueryKnn(p.q, p.heap_capacity, p.outcome.bounds,
  /// p.certain.size())` reply (or a batched equivalent) passed to Finish.
  PendingSenn Prepare(geom::Vec2 q, int k,
                      const std::vector<const CachedResult*>& peer_caches,
                      obs::QueryTracer* tracer = nullptr) const;

  /// Second half of Execute: merges the server reply into the pending
  /// outcome (result sort, certified prefix, access counters). `span`, when
  /// given, receives the server_einn args the sequential path records — pass
  /// the ScopedSpan bracketing the server contact, or null under a batched
  /// drain (the batch path emits server_batch_einn spans instead).
  void Finish(PendingSenn* pending, const ServerReply& reply,
              obs::ScopedSpan* span) const;

  /// Runs only the peer stages of Algorithm 1 (kNN_single, kNN_multiple —
  /// never the server) and reports whether the given peer set alone
  /// certifies a k answer. This is the partial-peer entry point: a caller
  /// whose harvest was truncated by the wireless channel can ask whether
  /// the complete peer set would have sufficed (classifying a server
  /// contact as loss-induced), without charging any page accesses.
  bool ResolvesLocally(geom::Vec2 q, int k,
                       const std::vector<const CachedResult*>& peer_caches) const;

  const SennOptions& options() const { return options_; }
  /// The server this processor queries — server-assisted extensions (the
  /// INSQ safe-region rival fetch in continuous.cc) piggyback structures
  /// computed from the full POI table on an answering contact.
  SpatialServer* server() const { return server_; }

 private:
  /// Drops null/empty caches and applies the Heuristic 3.3 ordering.
  std::vector<const CachedResult*> UsablePeers(
      geom::Vec2 q, const std::vector<const CachedResult*>& peer_caches) const;

  SpatialServer* server_;
  SennOptions options_;
};

}  // namespace senn::core
