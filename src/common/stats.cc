#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace senn {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  uint64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) /
            static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.4f sd=%.4f min=%.4f max=%.4f",
                static_cast<unsigned long long>(count_), mean(), stddev(), min(), max());
  return buf;
}

}  // namespace senn
