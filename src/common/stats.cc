#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace senn {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  rate_[0] = 0.0;
  rate_[1] = q_ / 2.0;
  rate_[2] = q_;
  rate_[3] = (1.0 + q_) / 2.0;
  rate_[4] = 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] = 1.0 + 4.0 * rate_[i];
}

double P2Quantile::Parabolic(int i, int sign) const {
  double d = static_cast<double>(sign);
  return h_[i] + d / (pos_[i + 1] - pos_[i - 1]) *
                     ((pos_[i] - pos_[i - 1] + d) * (h_[i + 1] - h_[i]) /
                          (pos_[i + 1] - pos_[i]) +
                      (pos_[i + 1] - pos_[i] - d) * (h_[i] - h_[i - 1]) /
                          (pos_[i] - pos_[i - 1]));
}

double P2Quantile::LinearStep(int i, int sign) const {
  return h_[i] + static_cast<double>(sign) * (h_[i + sign] - h_[i]) /
                     (pos_[i + sign] - pos_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    h_[count_++] = x;
    if (count_ == 5) {
      std::sort(h_, h_ + 5);
      for (int i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
    }
    return;
  }
  ++count_;
  int cell;
  if (x < h_[0]) {
    h_[0] = x;
    cell = 0;
  } else if (x >= h_[4]) {
    h_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && h_[cell + 1] <= x) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += rate_[i];
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      int sign = d >= 0.0 ? 1 : -1;
      double hp = Parabolic(i, sign);
      if (!(h_[i - 1] < hp && hp < h_[i + 1])) hp = LinearStep(i, sign);
      h_[i] = hp;
      pos_[i] += static_cast<double>(sign);
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    double sorted[5];
    std::copy(h_, h_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    double rank = q_ * static_cast<double>(count_ - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, static_cast<size_t>(count_ - 1));
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }
  return h_[2];
}

double P2Quantile::Cdf(double x) const {
  // Piecewise-linear CDF through the five markers; marker i carries
  // cumulative probability (pos_[i] - 1) / (count_ - 1).
  if (x <= h_[0]) return 0.0;
  if (x >= h_[4]) return 1.0;
  int i = 0;
  while (i < 3 && h_[i + 1] < x) ++i;
  double n1 = static_cast<double>(count_ - 1);
  double ci = (pos_[i] - 1.0) / n1;
  double cj = (pos_[i + 1] - 1.0) / n1;
  if (h_[i + 1] <= h_[i]) return cj;
  return ci + (cj - ci) * (x - h_[i]) / (h_[i + 1] - h_[i]);
}

void P2Quantile::Merge(const P2Quantile& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ < 5) {
    // The other side is still a raw buffer: replay it exactly.
    for (uint64_t i = 0; i < other.count_; ++i) Add(other.h_[i]);
    return;
  }
  if (count_ < 5) {
    P2Quantile merged = other;
    for (uint64_t i = 0; i < count_; ++i) merged.Add(h_[i]);
    *this = merged;
    return;
  }
  // Both sides have live markers. The merged CDF is the count-weighted
  // average of the two piecewise-linear CDFs; the new markers are its
  // inverse at the canonical P2 probabilities {0, q/2, q, (1+q)/2, 1}.
  const uint64_t total = count_ + other.count_;
  const double wa = static_cast<double>(count_) / static_cast<double>(total);
  const double wb = 1.0 - wa;
  double xs[10];
  std::copy(h_, h_ + 5, xs);
  std::copy(other.h_, other.h_ + 5, xs + 5);
  std::sort(xs, xs + 10);
  double fm[10];
  for (int j = 0; j < 10; ++j) fm[j] = wa * Cdf(xs[j]) + wb * other.Cdf(xs[j]);
  double nh[5];
  for (int m = 0; m < 5; ++m) {
    double t = rate_[m];
    if (t <= fm[0]) {
      nh[m] = xs[0];
    } else if (t >= fm[9]) {
      nh[m] = xs[9];
    } else {
      int j = 0;
      while (j < 9 && fm[j + 1] < t) ++j;
      nh[m] = fm[j + 1] > fm[j]
                  ? xs[j] + (xs[j + 1] - xs[j]) * (t - fm[j]) / (fm[j + 1] - fm[j])
                  : xs[j + 1];
    }
    if (m > 0) nh[m] = std::max(nh[m], nh[m - 1]);
  }
  count_ = total;
  std::copy(nh, nh + 5, h_);
  double n1 = static_cast<double>(total - 1);
  pos_[0] = 1.0;
  pos_[4] = static_cast<double>(total);
  for (int i = 1; i <= 3; ++i) {
    double want = std::floor(1.0 + n1 * rate_[i] + 0.5);
    // Keep the ranks strictly increasing (P2's invariant).
    double lo = pos_[i - 1] + 1.0;
    double hi = static_cast<double>(total) - static_cast<double>(4 - i);
    pos_[i] = std::clamp(want, lo, hi);
  }
  for (int i = 0; i < 5; ++i) desired_[i] = 1.0 + n1 * rate_[i];
}

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  uint64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) /
            static_cast<double>(n);
  mean_ = mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.4f sd=%.4f min=%.4f max=%.4f",
                static_cast<unsigned long long>(count_), mean(), stddev(), min(), max());
  return buf;
}

}  // namespace senn
