// Deterministic pseudo-random number generation for the simulator and tests.
//
// All randomness in the library flows through Rng so that every experiment is
// reproducible from a single printed seed. The generator is xoshiro256**
// seeded via splitmix64 (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace senn {

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographically secure; intended for simulation workloads. Streams
/// with different seeds are independent for practical purposes, and Split()
/// derives decorrelated child generators for per-entity randomness.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  /// the distribution is exactly uniform.
  uint64_t NextIndex(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  /// method for small means and a normal approximation above 64 to stay O(1).
  uint64_t Poisson(double mean);

  /// Standard normal deviate (Box-Muller).
  double Normal(double mean, double stddev);

  /// Derives an independent child generator (e.g., one per mobile host).
  /// Order-DEPENDENT: the child depends on how many draws preceded the call.
  /// Prefer Stream() wherever reproducibility across code reorderings or
  /// thread schedules matters.
  Rng Split();

  /// Derives a named, counter-based child stream. The result depends only on
  /// this generator's *construction seed*, the domain label, and the id —
  /// never on how many values have been drawn — so streams are
  /// order-independent: Stream("host", 7) yields the same generator no
  /// matter when it is derived or what other streams exist. Distinct
  /// (domain, id) pairs yield decorrelated streams.
  Rng Stream(std::string_view domain, uint64_t id = 0) const;

  /// The seed this generator was constructed with (the stream root).
  uint64_t seed() const { return seed_; }

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextIndex(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t seed_;
  uint64_t state_[4];
};

}  // namespace senn
