// Streaming statistics accumulators used by the simulator's metric plumbing
// and the benchmark row printers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace senn {

/// Streaming quantile estimator (the P² algorithm of Jain & Chlamtac, CACM
/// 1985): tracks one quantile of a stream in O(1) memory with five markers
/// whose heights are adjusted by parabolic interpolation. Used for the
/// latency percentiles (p50/p95/p99) of the messaging subsystem, where
/// storing every observation would defeat the streaming metric design.
///
/// Merge-compatible like RunningStats: Merge(other) deterministically
/// combines two estimators over the same quantile by reconstructing the
/// five markers from the weighted average of both estimators'
/// piecewise-linear CDFs (counts stay additive). The result is approximate
/// — as is P² itself — but a pure function of the two operands, so shard
/// merges stay bit-identical across thread counts.
class P2Quantile {
 public:
  /// Tracks the `q`-quantile, q in [0, 1] (clamped).
  explicit P2Quantile(double q = 0.5);

  /// Adds one observation.
  void Add(double x);

  /// Current estimate; exact (interpolated order statistic) below five
  /// observations, P² marker estimate afterwards. 0 when empty.
  double value() const;

  /// The tracked quantile (e.g. 0.95).
  double quantile() const { return q_; }
  /// Number of observations added so far (additive under Merge).
  uint64_t count() const { return count_; }

  /// Merges another estimator of the SAME quantile into this one.
  void Merge(const P2Quantile& other);

 private:
  double Parabolic(int i, int sign) const;
  double LinearStep(int i, int sign) const;
  /// F(x) of the piecewise-linear CDF through the five markers.
  double Cdf(double x) const;

  double q_;
  uint64_t count_ = 0;
  /// Marker heights; below five observations this is the raw sample buffer.
  double h_[5] = {0, 0, 0, 0, 0};
  /// Actual marker positions (1-based ranks).
  double pos_[5] = {1, 2, 3, 4, 5};
  /// Desired marker positions and their per-observation increments.
  double desired_[5];
  double rate_[5];
};

/// Hit/miss tally whose ratio merges exactly across seed shards: Merge sums
/// the counts and the rate is recomputed from the totals. (Averaging
/// per-shard rates would weight a 1-access shard like a 10^6-access shard;
/// the buffer-pool hit rate of the storage engine flows through this.)
class HitRate {
 public:
  void AddHits(uint64_t n) { hits_ += n; }
  void AddMisses(uint64_t n) { misses_ += n; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t total() const { return hits_ + misses_; }
  /// hits / (hits + misses); 0 when nothing was recorded.
  double rate() const {
    return total() > 0 ? static_cast<double>(hits_) / static_cast<double>(total()) : 0.0;
  }

  /// Adds the other tally's counts (commutative and associative, so shard
  /// merges are order-invariant).
  void Merge(const HitRate& other) {
    hits_ += other.hits_;
    misses_ += other.misses_;
  }

 private:
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  uint64_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  /// "n=<count> mean=<mean> sd=<sd> min=<min> max=<max>".
  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace senn
