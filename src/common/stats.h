// Streaming statistics accumulators used by the simulator's metric plumbing
// and the benchmark row printers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace senn {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  uint64_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  /// "n=<count> mean=<mean> sd=<sd> min=<min> max=<max>".
  std::string ToString() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace senn
