// Portability wrappers for clang's -Wthread-safety attributes.
//
// The macros expand to `__attribute__((...))` under clang (where the
// analysis runs, enabled by the root CMakeLists when the compiler is
// clang) and to nothing elsewhere, so gcc builds see plain declarations.
// Annotate with the ownership story, not the implementation: a field gets
// SENN_GUARDED_BY(mu) when every access happens under `mu`, a function
// gets SENN_REQUIRES(mu) when its CALLER must already hold `mu`, and
// SENN_EXCLUDES(mu) when it takes `mu` itself (callers must not hold it —
// std::mutex is non-reentrant).
//
// The spelling follows the LLVM doc's mutex.h example
// (clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to keep the
// macro namespace ours.
#pragma once

#if defined(__clang__)
#define SENN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SENN_THREAD_ANNOTATION__(x)
#endif

/// Field is protected by the given mutex.
#define SENN_GUARDED_BY(x) SENN_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer field: the POINTED-TO data is protected by the given mutex
/// (the pointer itself may be read freely).
#define SENN_PT_GUARDED_BY(x) SENN_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Caller must hold the mutex(es) when calling.
#define SENN_REQUIRES(...) SENN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the mutex(es); the function acquires them itself.
#define SENN_EXCLUDES(...) SENN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Function acquires the mutex(es) and returns with them held.
#define SENN_ACQUIRE(...) SENN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es) it was called with held.
#define SENN_RELEASE(...) SENN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Escape hatch for code the analysis cannot follow — justify in a comment.
#define SENN_NO_THREAD_SAFETY_ANALYSIS SENN_THREAD_ANNOTATION__(no_thread_safety_analysis)
