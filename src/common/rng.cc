#include "src/common/rng.h"

#include <cmath>

namespace senn {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Feeds b into the splitmix state a; distinct inputs give decorrelated
// outputs, and the combination is deterministic and order-free.
uint64_t MixIn(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return SplitMix64(&x);
}

uint64_t HashDomain(std::string_view domain) {
  // FNV-1a over the label bytes.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : domain) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextIndex(uint64_t n) {
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextIndex(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  // Inverse-CDF; NextDouble() < 1 so the log argument is > 0.
  return -mean * std::log(1.0 - NextDouble());
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = NextDouble();
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for workload
  // arrival counts at large rates.
  double draw = Normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; avoids u1 == 0.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Split() { return Rng(NextU64()); }

Rng Rng::Stream(std::string_view domain, uint64_t id) const {
  return Rng(MixIn(MixIn(seed_, HashDomain(domain)), id));
}

}  // namespace senn
