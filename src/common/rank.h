// THE ranking order of the system, at the bottom of the layer DAG.
//
// PR 4 made (distance, id) the canonical strict weak order after the
// tie-break postmortems; PR 10's L10-layering rule surfaced that the scalar
// form lived in src/core/types.h while src/rtree/knn.cc — two layers below
// core — called it, an upward include edge. The scalar order has no core
// vocabulary in its signature, so it lives here in common/ where every
// layer may reach it. core::RanksBefore re-exports it (plus the RankedPoi
// overload) so call sites keep their spelling.
#pragma once

#include <cstdint>

namespace senn {

/// Ascending distance, ties broken by ascending id. A strict weak order —
/// unlike distance-only comparison, which makes co-distant entries rank by
/// insertion order, so peer-iteration order (a function of harvest timing)
/// leaks into results. Every distance sort and every heap comparator must
/// go through this.
inline bool RanksBefore(double distance_a, int64_t id_a, double distance_b, int64_t id_b) {
  // senn-lint: allow(L5-float-eq): this IS the canonical order — exact
  // inequality decides when the id tie-break applies. Distances tie only
  // when bit-identical (same Dist computation), which is the contract every
  // caller relies on.
  if (distance_a != distance_b) return distance_a < distance_b;
  return id_a < id_b;
}

}  // namespace senn
