// Status / Result error-handling primitives, following the RocksDB/Arrow
// idiom: fallible APIs return a Status (or a Result<T> carrying a value),
// never throw on expected failure paths.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace senn {

/// Outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Statuses are cheap to copy (the common OK case
/// stores no message).
class Status {
 public:
  /// Machine-inspectable error category.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kFailedPrecondition,
    kInternal,
  };

  /// Constructs an OK status.
  Status() = default;

  /// Factory helpers -------------------------------------------------------
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) { return Status(Code::kNotFound, msg); }
  static Status OutOfRange(std::string_view msg) { return Status(Code::kOutOfRange, msg); }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status Internal(std::string_view msg) { return Status(Code::kInternal, msg); }

  /// Predicates -------------------------------------------------------------
  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsFailedPrecondition() const { return code_ == Code::kFailedPrecondition; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>" for logs and test output.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value-or-error wrapper: holds either a T or a non-OK Status.
///
/// Usage:
///   Result<Graph> g = Graph::Load(path);
///   if (!g.ok()) return g.status();
///   Use(g.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(payload_).ok() && "Result must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status; OK() if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Accessors require ok(); checked with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace senn
