// Unit conversions. The paper mixes units: simulation areas in miles,
// wireless transmission ranges in meters, speeds in miles per hour. The
// library computes in SI internally (meters, seconds) and converts at the
// configuration boundary.
#pragma once

namespace senn {

inline constexpr double kMetersPerMile = 1609.344;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerMinute = 60.0;

/// Miles -> meters.
constexpr double MilesToMeters(double miles) { return miles * kMetersPerMile; }

/// Meters -> miles.
constexpr double MetersToMiles(double meters) { return meters / kMetersPerMile; }

/// Miles-per-hour -> meters-per-second.
constexpr double MphToMps(double mph) { return mph * kMetersPerMile / kSecondsPerHour; }

/// Meters-per-second -> miles-per-hour.
constexpr double MpsToMph(double mps) { return mps * kSecondsPerHour / kMetersPerMile; }

}  // namespace senn
