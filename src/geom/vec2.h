// 2-D vector/point type and basic metric helpers. All geometry in the
// library is planar; coordinates are meters in a local Cartesian frame.
#pragma once

#include <cmath>

namespace senn::geom {

/// A 2-D point or vector (meters).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// Z component of the 3-D cross product; > 0 when o is counter-clockwise
  /// from *this.
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }
  /// Squared Euclidean norm.
  constexpr double Norm2() const { return x * x + y * y; }
  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }
  /// Unit vector in the same direction; returns (0,0) for the zero vector.
  Vec2 Normalized() const {
    double n = Norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Angle of the vector in radians, in (-pi, pi].
  double Angle() const { return std::atan2(y, x); }
  /// The vector rotated +90 degrees.
  constexpr Vec2 Perp() const { return {-y, x}; }
};

/// Euclidean distance between two points.
inline double Dist(Vec2 a, Vec2 b) { return (a - b).Norm(); }

/// Squared Euclidean distance between two points.
constexpr double Dist2(Vec2 a, Vec2 b) { return (a - b).Norm2(); }

}  // namespace senn::geom
