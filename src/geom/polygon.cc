#include "src/geom/polygon.h"

#include <cassert>
#include <cmath>

namespace senn::geom {

ConvexPolygon ConvexPolygon::InscribedInCircle(const Circle& c, int m, double phase) {
  assert(m >= 3);
  std::vector<Vec2> verts;
  verts.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    double angle = phase + 2.0 * M_PI * i / m;
    verts.push_back(c.PointAt(angle));
  }
  return ConvexPolygon(std::move(verts));
}

ConvexPolygon ConvexPolygon::CircumscribedAboutCircle(const Circle& c, int m, double phase) {
  assert(m >= 3);
  Circle outer(c.center, c.radius / std::cos(M_PI / m));
  // Offset by half a sector so each edge midpoint touches the inner circle.
  return InscribedInCircle(outer, m, phase + M_PI / m);
}

double ConvexPolygon::Area() const {
  if (IsEmpty()) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    Vec2 p = vertices_[i];
    Vec2 q = vertices_[(i + 1) % vertices_.size()];
    twice += p.Cross(q);
  }
  return 0.5 * twice;
}

bool ConvexPolygon::Contains(Vec2 p, double eps) const {
  if (IsEmpty()) return false;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    Vec2 a = vertices_[i];
    Vec2 b = vertices_[(i + 1) % vertices_.size()];
    if ((b - a).Cross(p - a) < -eps) return false;
  }
  return true;
}

ConvexPolygon ConvexPolygon::ClipToHalfPlane(const HalfPlane& hp) const {
  if (IsEmpty()) return {};
  std::vector<Vec2> out;
  out.reserve(vertices_.size() + 1);
  for (size_t i = 0; i < vertices_.size(); ++i) {
    Vec2 cur = vertices_[i];
    Vec2 nxt = vertices_[(i + 1) % vertices_.size()];
    double side_cur = hp.Side(cur);
    double side_nxt = hp.Side(nxt);
    if (side_cur >= 0.0) out.push_back(cur);
    if ((side_cur > 0.0 && side_nxt < 0.0) || (side_cur < 0.0 && side_nxt > 0.0)) {
      double t = side_cur / (side_cur - side_nxt);
      out.push_back(cur + (nxt - cur) * t);
    }
  }
  if (out.size() < 3) return {};
  return ConvexPolygon(std::move(out));
}

std::vector<HalfPlane> ConvexPolygon::EdgeHalfPlanes() const {
  std::vector<HalfPlane> edges;
  edges.reserve(vertices_.size());
  for (size_t i = 0; i < vertices_.size(); ++i) {
    edges.push_back({vertices_[i], vertices_[(i + 1) % vertices_.size()]});
  }
  return edges;
}

}  // namespace senn::geom
