// Plane regions represented as unions of convex polygon pieces, with the
// boolean-difference operation needed to test coverage — the computational
// role the paper assigns to "polygonization + MapOverlay" (de Berg et al.).
//
// Instead of maintaining a doubly-connected edge list, we keep the *uncovered
// remainder* of the query polygon as a set of disjoint convex pieces:
// subtracting a convex polygon C (edges h_1..h_m, inside = intersection of
// half-planes) from a convex piece P decomposes exactly as
//     P \ C = union over i of ( P n h_1 n ... n h_{i-1} n complement(h_i) ),
// each term convex. Coverage holds iff the remainder becomes empty. This is
// the same overlay arithmetic with a representation suited to the one query
// the algorithm needs ("is the union covering?") rather than a full map.
#pragma once

#include <vector>

#include "src/geom/circle.h"
#include "src/geom/mbr.h"
#include "src/geom/polygon.h"

namespace senn::geom {

/// A (possibly empty, possibly disconnected) region stored as disjoint
/// convex pieces.
class ConvexPieceRegion {
 public:
  ConvexPieceRegion() = default;
  /// Region consisting of a single convex polygon.
  explicit ConvexPieceRegion(ConvexPolygon piece);

  /// Removes the given convex polygon from the region (boolean difference).
  /// Pieces whose area falls below `min_area` are dropped, which keeps the
  /// piece count bounded in the presence of floating-point slivers.
  void SubtractConvex(const ConvexPolygon& clip, double min_area = 1e-9);

  /// True iff nothing (above the sliver threshold) remains.
  bool IsEmpty() const { return pieces_.empty(); }

  /// Total area of the remaining pieces.
  double Area() const;

  /// Number of convex pieces currently representing the region.
  size_t PieceCount() const { return pieces_.size(); }

  const std::vector<ConvexPolygon>& pieces() const { return pieces_; }

 private:
  std::vector<ConvexPolygon> pieces_;
};

/// Options for the polygonized (paper-style) coverage test.
struct PolygonizeOptions {
  /// Polygon resolution: peer disks become inscribed `sides`-gons and the
  /// query disk a circumscribed `sides`-gon. Higher = tighter approximation.
  int sides = 32;
  /// Remainder pieces below this area (square meters) are considered
  /// floating-point slivers and dropped.
  double min_area = 1e-6;
};

/// Paper-style coverage test: polygonize `cover` and `subject` conservatively
/// and report whether the polygonized union covers the polygonized subject.
/// Guaranteed one-sided: a `true` here implies DiskCoveredByUnion(...) would
/// also hold (up to the sliver threshold); a `false` may be a false negative
/// caused by the polygon approximation.
bool PolygonizedDiskCoveredByUnion(const Circle& subject, const std::vector<Circle>& cover,
                                   const PolygonizeOptions& options = {});

/// True iff the axis-aligned rectangle is covered by the union of disks.
/// Conservative (inscribed polygonization of the disks): a `true` verdict is
/// exact; a `false` may be a false negative. Used by the region-aware server
/// pruning extension: an MBR covered by the clients' certain region R_c
/// contains only POIs the client already knows.
bool MbrCoveredByDiskUnion(const Mbr& box, const std::vector<Circle>& cover,
                           const PolygonizeOptions& options = {});

}  // namespace senn::geom
