// Axis-aligned minimum bounding rectangles with the MINDIST and MAXDIST
// point-to-rectangle metrics used by the R*-tree kNN algorithms.
//
// MINDIST(q, M) is the smallest possible distance from q to any point in M
// (Roussopoulos et al.); MAXDIST(q, M) is the largest. The paper's EINN
// extension (Section 3.3) prunes any MBR whose MAXDIST is below the branch-
// expanding lower bound (the MBR lies fully inside the already-certain disk)
// and any MBR whose MINDIST exceeds the upper bound.
#pragma once

#include <algorithm>
#include <limits>

#include "src/geom/vec2.h"

namespace senn::geom {

/// Axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
struct Mbr {
  Vec2 lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
  Vec2 hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()};

  /// An empty rectangle; Expand() grows it to cover geometry.
  static Mbr Empty() { return Mbr{}; }
  /// The degenerate rectangle covering a single point.
  static Mbr OfPoint(Vec2 p) { return Mbr{p, p}; }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  /// Grows the rectangle to cover p.
  void Expand(Vec2 p);
  /// Grows the rectangle to cover other.
  void Expand(const Mbr& other);

  /// Area; 0 for empty or degenerate rectangles.
  double Area() const;
  /// Half perimeter (the R*-tree "margin" heuristic uses perimeter sums).
  double Margin() const;
  /// Area of the intersection with other (0 when disjoint).
  double OverlapArea(const Mbr& other) const;
  /// Area increase required to cover other.
  double Enlargement(const Mbr& other) const;

  bool Contains(Vec2 p) const;
  bool ContainsMbr(const Mbr& other) const;
  bool Intersects(const Mbr& other) const;

  Vec2 Center() const { return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5}; }

  /// Squared MINDIST from q to the rectangle (0 if q inside).
  double MinDist2(Vec2 q) const;
  /// Squared MAXDIST from q to the rectangle (distance to the farthest corner).
  double MaxDist2(Vec2 q) const;
  /// MINDIST metric (Euclidean).
  double MinDist(Vec2 q) const { return std::sqrt(MinDist2(q)); }
  /// MAXDIST metric (Euclidean).
  double MaxDist(Vec2 q) const { return std::sqrt(MaxDist2(q)); }
};

}  // namespace senn::geom
