#include "src/geom/angular.h"

#include <algorithm>
#include <cmath>

namespace senn::geom {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

double WrapAngle(double a) {
  double w = std::fmod(a, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

}  // namespace

void AngularIntervalSet::AddArc(double a, double b) {
  if (full_) return;
  if (b - a >= kTwoPi) {
    AddFull();
    return;
  }
  if (b == a) return;
  // Wrapped input (end < begin after the caller normalized both angles into
  // [0, 2pi)) means the arc crosses 0: unwrap by advancing `b` past `a`.
  // Silently dropping such arcs loses real coverage and can make
  // kNN_multiple falsely reject a certain candidate.
  while (b < a) b += kTwoPi;
  double begin = WrapAngle(a);
  double length = b - a;
  double end = begin + length;
  if (end <= kTwoPi) {
    raw_.push_back({begin, end});
  } else {
    // Wraps past 2*pi: split into two non-wrapping pieces.
    raw_.push_back({begin, kTwoPi});
    raw_.push_back({0.0, end - kTwoPi});
  }
}

void AngularIntervalSet::AddCenteredArc(double mid, double half_width) {
  if (half_width <= 0.0) return;
  if (half_width >= M_PI) {
    AddFull();
    return;
  }
  AddArc(mid - half_width, mid + half_width);
}

void AngularIntervalSet::AddFull() {
  full_ = true;
  raw_.clear();
}

std::vector<AngularInterval> AngularIntervalSet::Normalized(double eps) const {
  if (full_) return {{0.0, kTwoPi}};
  std::vector<AngularInterval> sorted = raw_;
  std::sort(sorted.begin(), sorted.end(),
            [](const AngularInterval& l, const AngularInterval& r) { return l.begin < r.begin; });
  std::vector<AngularInterval> merged;
  for (const AngularInterval& iv : sorted) {
    if (!merged.empty() && iv.begin <= merged.back().end + eps) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

bool AngularIntervalSet::CoversFullCircle(double eps) const {
  if (full_) return true;
  std::vector<AngularInterval> merged = Normalized(eps);
  if (merged.empty()) return false;
  if (merged.front().begin > eps) return false;
  if (merged.size() > 1) return false;  // any second interval implies a gap > eps
  return merged.front().end >= kTwoPi - eps;
}

bool AngularIntervalSet::IsEmpty(double eps) const {
  if (full_) return false;
  for (const AngularInterval& iv : Normalized(0.0)) {
    if (iv.end - iv.begin > eps) return false;
  }
  return true;
}

AngularIntervalSet AngularIntervalSet::Complement(double eps) const {
  AngularIntervalSet out;
  if (full_) return out;
  std::vector<AngularInterval> merged = Normalized(eps);
  if (merged.empty()) {
    out.AddFull();
    return out;
  }
  double cursor = 0.0;
  for (const AngularInterval& iv : merged) {
    if (iv.begin - cursor > eps) out.AddArc(cursor, iv.begin);
    cursor = std::max(cursor, iv.end);
  }
  if (kTwoPi - cursor > eps) out.AddArc(cursor, kTwoPi);
  return out;
}

AngularIntervalSet AngularIntervalSet::Subtract(const AngularIntervalSet& other,
                                                double eps) const {
  AngularIntervalSet out;
  if (other.full_) return out;
  std::vector<AngularInterval> mine = Normalized(0.0);
  std::vector<AngularInterval> holes = other.Normalized(0.0);
  for (const AngularInterval& iv : mine) {
    double cursor = iv.begin;
    for (const AngularInterval& hole : holes) {
      if (hole.end <= cursor) continue;
      if (hole.begin >= iv.end) break;
      if (hole.begin - cursor > eps) out.AddArc(cursor, hole.begin);
      cursor = std::max(cursor, hole.end);
      if (cursor >= iv.end) break;
    }
    if (iv.end - cursor > eps) out.AddArc(cursor, iv.end);
  }
  return out;
}

double AngularIntervalSet::Measure() const {
  double total = 0.0;
  for (const AngularInterval& iv : Normalized(0.0)) total += iv.end - iv.begin;
  return std::min(total, kTwoPi);
}

std::vector<AngularInterval> AngularIntervalSet::Intervals(double eps) const {
  return Normalized(eps);
}

}  // namespace senn::geom
