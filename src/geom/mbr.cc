#include "src/geom/mbr.h"

namespace senn::geom {

void Mbr::Expand(Vec2 p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

void Mbr::Expand(const Mbr& other) {
  if (other.IsEmpty()) return;
  Expand(other.lo);
  Expand(other.hi);
}

double Mbr::Area() const {
  if (IsEmpty()) return 0.0;
  return (hi.x - lo.x) * (hi.y - lo.y);
}

double Mbr::Margin() const {
  if (IsEmpty()) return 0.0;
  return (hi.x - lo.x) + (hi.y - lo.y);
}

double Mbr::OverlapArea(const Mbr& other) const {
  double dx = std::min(hi.x, other.hi.x) - std::max(lo.x, other.lo.x);
  double dy = std::min(hi.y, other.hi.y) - std::max(lo.y, other.lo.y);
  if (dx <= 0.0 || dy <= 0.0) return 0.0;
  return dx * dy;
}

double Mbr::Enlargement(const Mbr& other) const {
  Mbr merged = *this;
  merged.Expand(other);
  return merged.Area() - Area();
}

bool Mbr::Contains(Vec2 p) const {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
}

bool Mbr::ContainsMbr(const Mbr& other) const {
  if (other.IsEmpty()) return true;
  return other.lo.x >= lo.x && other.hi.x <= hi.x && other.lo.y >= lo.y && other.hi.y <= hi.y;
}

bool Mbr::Intersects(const Mbr& other) const {
  return !(other.lo.x > hi.x || other.hi.x < lo.x || other.lo.y > hi.y || other.hi.y < lo.y);
}

double Mbr::MinDist2(Vec2 q) const {
  double dx = std::max({lo.x - q.x, 0.0, q.x - hi.x});
  double dy = std::max({lo.y - q.y, 0.0, q.y - hi.y});
  return dx * dx + dy * dy;
}

double Mbr::MaxDist2(Vec2 q) const {
  double dx = std::max(std::abs(q.x - lo.x), std::abs(q.x - hi.x));
  double dy = std::max(std::abs(q.y - lo.y), std::abs(q.y - hi.y));
  return dx * dx + dy * dy;
}

}  // namespace senn::geom
