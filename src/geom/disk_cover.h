// Exact test for "is a disk covered by a union of disks?".
//
// This is the geometric core of the multi-peer verification (Lemma 3.8): a
// candidate POI n is a certain nearest neighbor of the query host Q iff the
// disk centered at Q through n is fully covered by the union of the peers'
// certain-area disks R_c.
//
// The test uses the arc-coverage criterion (the same structure underlies
// perimeter-coverage results for sensor networks): a closed disk D is covered
// by the union of closed disks {D_j} iff
//   (a) the boundary circle of D is covered by the union, and
//   (b) for every j, the arc of D_j's boundary that lies inside D is covered
//       by the union of the *other* disks.
// Any uncovered pocket inside D must be bounded by arcs of the input circles,
// and each such arc violates (a) or (b); conversely (a)+(b) leave no room for
// a pocket. Both conditions reduce to interval arithmetic on angles
// (angular.h), so the test is exact up to floating-point tolerance and runs
// in O(m^2 log m) for m disks — m is the number of reachable peers, which is
// small.
#pragma once

#include <optional>
#include <vector>

#include "src/geom/angular.h"
#include "src/geom/circle.h"

namespace senn::geom {

/// The arc of the boundary circle of `subject` that lies inside the closed
/// disk `disk`, as an angular-interval set (possibly empty or full circle).
/// `inflate` is added to disk.radius before the computation; a small positive
/// value makes coverage checks tolerant of floating-point noise at tangency.
AngularIntervalSet ArcInsideDisk(const Circle& subject, const Circle& disk,
                                 double inflate = 0.0);

/// True iff the closed disk `subject` is covered by the union of `cover`.
///
/// `tolerance` (meters) inflates the covering disks; it should be negligible
/// relative to the geometry scale (default 1e-6 m for meter-scale inputs).
/// With tolerance = 0 the test errs toward "not covered" at degenerate
/// tangencies, which is the safe direction for verification (a not-covered
/// verdict merely sends the query to the server).
bool DiskCoveredByUnion(const Circle& subject, const std::vector<Circle>& cover,
                        double tolerance = 1e-6);

/// Given a fixed cover, returns the largest radius r such that the disk
/// (center, r) is covered by the union, determined by bisection to
/// `precision` meters; returns 0 when even the center point is uncovered.
/// Useful for diagnostics and the coverage ablation bench.
double MaxCoveredRadius(Vec2 center, const std::vector<Circle>& cover, double hi,
                        double precision = 1e-3, double tolerance = 1e-6);

}  // namespace senn::geom
