#include "src/geom/region.h"

namespace senn::geom {

ConvexPieceRegion::ConvexPieceRegion(ConvexPolygon piece) {
  if (!piece.IsEmpty()) pieces_.push_back(std::move(piece));
}

void ConvexPieceRegion::SubtractConvex(const ConvexPolygon& clip, double min_area) {
  if (clip.IsEmpty() || pieces_.empty()) return;
  std::vector<HalfPlane> edges = clip.EdgeHalfPlanes();
  std::vector<ConvexPolygon> next;
  next.reserve(pieces_.size());
  for (const ConvexPolygon& piece : pieces_) {
    // Peel the piece: for edge i, emit the part inside edges 1..i-1 but
    // outside edge i; what survives all edges is inside `clip` and vanishes.
    ConvexPolygon inside_so_far = piece;
    for (const HalfPlane& edge : edges) {
      if (inside_so_far.IsEmpty()) break;
      HalfPlane complement{edge.b, edge.a};  // flips the inside direction
      ConvexPolygon outside = inside_so_far.ClipToHalfPlane(complement);
      if (!outside.IsEmpty() && outside.Area() > min_area) {
        next.push_back(std::move(outside));
      }
      inside_so_far = inside_so_far.ClipToHalfPlane(edge);
    }
  }
  pieces_ = std::move(next);
}

double ConvexPieceRegion::Area() const {
  double total = 0.0;
  for (const ConvexPolygon& piece : pieces_) total += piece.Area();
  return total;
}

bool MbrCoveredByDiskUnion(const Mbr& box, const std::vector<Circle>& cover,
                           const PolygonizeOptions& options) {
  if (box.IsEmpty()) return true;
  if (cover.empty()) return false;
  // Quick single-disk win: a disk covers the box iff it contains the
  // farthest corner (exact, no polygonization loss).
  for (const Circle& c : cover) {
    if (box.MaxDist(c.center) <= c.radius) return true;
  }
  ConvexPieceRegion remainder(ConvexPolygon(
      {{box.lo.x, box.lo.y}, {box.hi.x, box.lo.y}, {box.hi.x, box.hi.y}, {box.lo.x, box.hi.y}}));
  for (const Circle& c : cover) {
    if (c.radius <= 0.0) continue;
    remainder.SubtractConvex(ConvexPolygon::InscribedInCircle(c, options.sides),
                             options.min_area);
    if (remainder.IsEmpty()) return true;
  }
  return remainder.IsEmpty();
}

bool PolygonizedDiskCoveredByUnion(const Circle& subject, const std::vector<Circle>& cover,
                                   const PolygonizeOptions& options) {
  if (cover.empty()) return false;
  if (subject.radius <= 0.0) {
    // Degenerate query disk: exact point-membership (still one-sided).
    for (const Circle& c : cover) {
      if (c.Contains(subject.center)) return true;
    }
    return false;
  }
  ConvexPieceRegion remainder(
      ConvexPolygon::CircumscribedAboutCircle(subject, options.sides));
  for (const Circle& c : cover) {
    if (c.radius <= 0.0) continue;
    remainder.SubtractConvex(ConvexPolygon::InscribedInCircle(c, options.sides),
                             options.min_area);
    if (remainder.IsEmpty()) return true;
  }
  return remainder.IsEmpty();
}

}  // namespace senn::geom
