// Convex polygons and half-plane clipping.
//
// The paper's kNN_multiple verification "adopt[s] a polygonization technique
// that transforms all the certain area circles into polygons" before merging
// them into the certain region R_c. We polygonize conservatively:
//   * peer certain-area disks -> inscribed regular m-gons (under-approximate
//     the covering region), and
//   * the query disk          -> circumscribed regular m-gon (over-approximate
//     the region that must be covered),
// so the polygonized test can only under-report certainty, never falsely
// certify a POI.
#pragma once

#include <vector>

#include "src/geom/circle.h"
#include "src/geom/vec2.h"

namespace senn::geom {

/// A directed line; the half-plane "inside" is to the left of a->b.
struct HalfPlane {
  Vec2 a;
  Vec2 b;

  /// Signed distance-like value: > 0 strictly inside, < 0 strictly outside.
  double Side(Vec2 p) const { return (b - a).Cross(p - a); }
};

/// A convex polygon with vertices in counter-clockwise order.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;
  /// Vertices must be in CCW order and form a convex polygon; this is not
  /// validated (construction sites are trusted internal code and tests).
  explicit ConvexPolygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {}

  /// Regular m-gon inscribed in the circle (vertices on the boundary).
  /// Requires m >= 3. `phase` rotates the vertex placement (radians).
  static ConvexPolygon InscribedInCircle(const Circle& c, int m, double phase = 0.0);

  /// Regular m-gon circumscribed about the circle (edges tangent to the
  /// boundary; vertices at radius r / cos(pi/m)). Requires m >= 3.
  static ConvexPolygon CircumscribedAboutCircle(const Circle& c, int m, double phase = 0.0);

  const std::vector<Vec2>& vertices() const { return vertices_; }
  bool IsEmpty() const { return vertices_.size() < 3; }

  /// Polygon area (shoelace); >= 0 for CCW vertices.
  double Area() const;

  /// True iff p is inside or on the boundary (tolerance eps on the cross
  /// products, in squared-meter-ish units — keep tiny).
  bool Contains(Vec2 p, double eps = 1e-9) const;

  /// The part of the polygon inside the half-plane, clipped with
  /// Sutherland-Hodgman against the single edge. May be empty.
  ConvexPolygon ClipToHalfPlane(const HalfPlane& hp) const;

  /// Edges as half-planes whose intersection is the polygon.
  std::vector<HalfPlane> EdgeHalfPlanes() const;

 private:
  std::vector<Vec2> vertices_;
};

}  // namespace senn::geom
