#include "src/geom/disk_cover.h"

#include <algorithm>
#include <cmath>

namespace senn::geom {

AngularIntervalSet ArcInsideDisk(const Circle& subject, const Circle& disk, double inflate) {
  AngularIntervalSet out;
  const double r = subject.radius;
  const double rr = disk.radius + inflate;
  if (rr < 0.0) return out;
  const double d = Dist(subject.center, disk.center);
  if (d + r <= rr) {
    out.AddFull();  // the whole subject circle lies inside the disk
    return out;
  }
  if (d > r + rr) return out;       // too far: no boundary point inside
  if (d + rr < r) return out;       // disk strictly inside subject: boundary untouched
  if (r == 0.0) {
    // Degenerate subject: the "boundary" is the center point.
    if (d <= rr) out.AddFull();
    return out;
  }
  // Law of cosines: angle at subject.center subtended by the chord where the
  // two circles intersect.
  double cos_half = (d * d + r * r - rr * rr) / (2.0 * d * r);
  cos_half = std::clamp(cos_half, -1.0, 1.0);
  double half_width = std::acos(cos_half);
  double mid = (disk.center - subject.center).Angle();
  out.AddCenteredArc(mid, half_width);
  return out;
}

bool DiskCoveredByUnion(const Circle& subject, const std::vector<Circle>& cover,
                        double tolerance) {
  if (cover.empty()) return false;
  for (const Circle& c : cover) {
    if (c.ContainsCircle(subject, tolerance)) return true;  // single-disk win
  }
  if (subject.radius <= 0.0) {
    for (const Circle& c : cover) {
      if (c.Contains(subject.center, tolerance)) return true;
    }
    return false;
  }

  constexpr double kAngularEps = 1e-9;

  // Condition (a): the subject boundary circle is covered by the union.
  AngularIntervalSet boundary;
  for (const Circle& c : cover) {
    AngularIntervalSet arc = ArcInsideDisk(subject, c, tolerance);
    for (const AngularInterval& iv : arc.Intervals()) boundary.AddArc(iv.begin, iv.end);
  }
  if (!boundary.CoversFullCircle(kAngularEps)) return false;

  // Condition (b): for each covering disk, the part of its boundary inside
  // the subject must be covered by the other disks.
  for (size_t j = 0; j < cover.size(); ++j) {
    Circle cj = cover[j];
    if (cj.radius <= 0.0) continue;
    // Arc of cj's boundary strictly inside the subject disk. Shrinking the
    // subject by the tolerance keeps points that merely touch the subject
    // boundary out of the requirement (they are handled by condition (a)).
    Circle shrunk_subject(subject.center, std::max(0.0, subject.radius - tolerance));
    AngularIntervalSet inside = ArcInsideDisk(cj, shrunk_subject, 0.0);
    if (inside.IsEmpty()) continue;
    AngularIntervalSet covered_by_others;
    for (size_t l = 0; l < cover.size(); ++l) {
      if (l == j) continue;
      AngularIntervalSet arc = ArcInsideDisk(cj, cover[l], tolerance);
      for (const AngularInterval& iv : arc.Intervals()) {
        covered_by_others.AddArc(iv.begin, iv.end);
      }
    }
    AngularIntervalSet leftover = inside.Subtract(covered_by_others, kAngularEps);
    if (!leftover.IsEmpty(kAngularEps)) return false;
  }
  return true;
}

double MaxCoveredRadius(Vec2 center, const std::vector<Circle>& cover, double hi,
                        double precision, double tolerance) {
  if (!DiskCoveredByUnion(Circle(center, 0.0), cover, tolerance)) return 0.0;
  double lo = 0.0;
  if (DiskCoveredByUnion(Circle(center, hi), cover, tolerance)) return hi;
  while (hi - lo > precision) {
    double mid = 0.5 * (lo + hi);
    if (DiskCoveredByUnion(Circle(center, mid), cover, tolerance)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace senn::geom
