// Circles / closed disks. The verification machinery of the paper reasons
// about disks: a peer's "certain area" is the disk centered at its cached
// query location whose radius is the distance to its farthest cached nearest
// neighbor (Lemmas 3.1/3.2/3.8).
#pragma once

#include "src/geom/vec2.h"

namespace senn::geom {

/// A closed disk { p : |p - center| <= radius }.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  constexpr Circle() = default;
  constexpr Circle(Vec2 c, double r) : center(c), radius(r) {}

  /// True iff p lies in the closed disk (with optional tolerance, in meters).
  bool Contains(Vec2 p, double eps = 0.0) const {
    return Dist(center, p) <= radius + eps;
  }

  /// True iff the closed disk `other` is entirely inside this closed disk.
  bool ContainsCircle(const Circle& other, double eps = 0.0) const {
    return Dist(center, other.center) + other.radius <= radius + eps;
  }

  /// True iff the two closed disks share at least one point.
  bool Intersects(const Circle& other, double eps = 0.0) const {
    return Dist(center, other.center) <= radius + other.radius + eps;
  }

  /// Point on the circle boundary at the given angle (radians).
  Vec2 PointAt(double angle) const {
    return {center.x + radius * std::cos(angle), center.y + radius * std::sin(angle)};
  }
};

}  // namespace senn::geom
