// Arithmetic on sets of angular intervals over the circle [0, 2*pi).
//
// The exact disk-union coverage test (disk_cover.h) reduces "is this circle
// boundary covered by a set of disks?" to interval-union questions on angle
// space. Intervals wrap around 2*pi; the set is kept as a sorted list of
// disjoint, non-wrapping half-open intervals.
#pragma once

#include <vector>

namespace senn::geom {

/// One half-open angular interval [begin, end) with 0 <= begin < end <= 2*pi
/// after normalization (wrapping inputs are split in AngularIntervalSet).
struct AngularInterval {
  double begin = 0.0;
  double end = 0.0;
};

/// A subset of the circle [0, 2*pi) represented as disjoint sorted intervals.
class AngularIntervalSet {
 public:
  /// Adds the (possibly wrapping) interval [a, b] of directions. `a` and `b`
  /// are arbitrary radians; the arc swept counter-clockwise from a to b is
  /// added. If b - a >= 2*pi the full circle is added.
  void AddArc(double a, double b);

  /// Adds the arc centered at `mid` with the given half-width (radians).
  /// A half-width >= pi adds the full circle.
  void AddCenteredArc(double mid, double half_width);

  /// Adds the entire circle.
  void AddFull();

  /// True iff the set covers the whole circle, allowing gaps of at most
  /// eps radians (coalesces near-touching intervals defensively).
  bool CoversFullCircle(double eps = 1e-9) const;

  /// True iff the set is empty (up to intervals shorter than eps).
  bool IsEmpty(double eps = 1e-12) const;

  /// Returns the complement set (the uncovered arcs), ignoring gaps
  /// shorter than eps.
  AngularIntervalSet Complement(double eps = 1e-12) const;

  /// Returns this-minus-other: arcs of this set not covered by other.
  /// Arcs shorter than eps in the result are dropped.
  AngularIntervalSet Subtract(const AngularIntervalSet& other, double eps = 1e-12) const;

  /// Total angular measure of the set (radians).
  double Measure() const;

  /// The normalized, merged intervals (sorted, disjoint, non-wrapping).
  std::vector<AngularInterval> Intervals(double eps = 0.0) const;

 private:
  std::vector<AngularInterval> Normalized(double eps) const;

  // Raw intervals as added; normalized lazily by queries.
  std::vector<AngularInterval> raw_;
  bool full_ = false;
};

}  // namespace senn::geom
