// Paranoid build mode: algorithmic invariant checks that are too expensive
// (or too noisy) for production builds but cheap insurance in CI.
//
// Enabled with -DSENN_PARANOID=ON at configure time (tools/check.sh runs the
// tier-1 suite under such a build). When disabled, SENN_PARANOID_CHECK
// compiles to an unevaluated sizeof — zero code, zero branches — so release
// binaries and goldens are byte-for-byte unaffected.
//
// Checked invariants live next to the data structures that own them:
//   * CandidateHeap — certain/uncertain lists are (distance, id)-sorted rank
//     sequences, ids unique, size within capacity, and
//     ComputeBounds().lower <= upper whenever both exist;
//   * BufferPool — pin balance (no leaked pins at destruction, no unpin
//     without a matching fetch);
//   * SennProcessor — the certified prefix shipped to the caller is sorted
//     and within the heap bounds, checked inside the heap_classify span.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(SENN_PARANOID)
#define SENN_PARANOID_ENABLED 1
#define SENN_PARANOID_CHECK(cond, what)                                         \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "SENN_PARANOID violation: %s at %s:%d (%s)\n", what, \
                   __FILE__, __LINE__, #cond);                                  \
      std::abort();                                                             \
    }                                                                           \
  } while (0)
#else
#define SENN_PARANOID_ENABLED 0
// Unevaluated: keeps `cond`'s operands "used" for -Wunused purposes while
// generating no code.
#define SENN_PARANOID_CHECK(cond, what) ((void)sizeof(!(cond)))
#endif
