#include "src/obs/chrome_trace.h"

#include <cstdio>

namespace senn::obs {

namespace {

void AppendU64(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  *out += buf;
}

}  // namespace

std::string ChromeTraceWriter::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& span : spans_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += PhaseName(span.phase);
    out += "\",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    AppendU64(&out, span.query_id);
    out += ",\"ts\":";
    AppendU64(&out, span.ts_us);
    out += ",\"dur\":";
    AppendU64(&out, span.dur_us);
    out += ",\"args\":{";
    for (int i = 0; i < span.arg_count; ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += span.args[i].name;
      out += "\":";
      AppendU64(&out, span.args[i].value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Status ChromeTraceWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size() && std::fputc('\n', f) != EOF;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::Internal("short write to trace output file: " + path);
  return Status::OK();
}

void PhaseMetricsSink::OnSpan(const SpanEvent& span) {
  const std::string name = PhaseName(span.phase);
  registry_->Inc("span/" + name);
  registry_->Observe(name + "/ticks", static_cast<double>(span.dur_us));
  for (int i = 0; i < span.arg_count; ++i) {
    registry_->Observe(name + "/" + span.args[i].name,
                       static_cast<double>(span.args[i].value));
  }
}

}  // namespace senn::obs
