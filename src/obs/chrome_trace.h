// TraceSink implementations: the Chrome trace_event exporter behind
// `senn_sim --trace-out`, the per-phase MetricsRegistry collector behind the
// per-phase cost table, and a tee for running both off one span stream.
#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace senn::obs {

/// Buffers spans and renders them as Chrome trace_event JSON
/// (`{"traceEvents":[...]}`), openable in Perfetto / chrome://tracing.
///
/// Each span becomes one complete ("ph":"X") event whose `tid` is the query
/// id — every traced query gets its own track, and the per-query tick
/// counters can never collide across queries issued at the same simulation
/// time. Timestamps are the deterministic sim-time ticks from QueryTracer,
/// rendered as integers, so a fixed-seed run writes a byte-identical file
/// regardless of thread count or machine.
class ChromeTraceWriter : public TraceSink {
 public:
  void OnSpan(const SpanEvent& span) override { spans_.push_back(span); }

  size_t span_count() const { return spans_.size(); }
  const std::vector<SpanEvent>& spans() const { return spans_; }

  /// The full trace document. Deterministic: events appear in emission
  /// order, all numbers are integers.
  std::string ToJson() const;

  /// Writes ToJson() to `path` (trailing newline included).
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<SpanEvent> spans_;
};

/// Folds the span stream into a MetricsRegistry: per phase a `span/<name>`
/// counter, a `<name>/ticks` duration histogram, and one `<name>/<arg>`
/// histogram per span argument. This is what the per-phase cost table in
/// senn_sim prints (the phase-decomposed counterpart of the paper's
/// Figs. 10-13 aggregates).
class PhaseMetricsSink : public TraceSink {
 public:
  explicit PhaseMetricsSink(MetricsRegistry* registry) : registry_(registry) {}
  void OnSpan(const SpanEvent& span) override;

 private:
  MetricsRegistry* registry_;
};

/// Forwards each span to every attached sink, in attachment order.
class TeeSink : public TraceSink {
 public:
  void Add(TraceSink* sink) { sinks_.push_back(sink); }
  void OnSpan(const SpanEvent& span) override {
    for (TraceSink* sink : sinks_) sink->OnSpan(span);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace senn::obs
