#include "src/obs/trace.h"

namespace senn::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPeerHarvest:
      return "peer_harvest";
    case Phase::kVerifySingle:
      return "verify_single";
    case Phase::kVerifyMulti:
      return "verify_multi";
    case Phase::kHeapClassify:
      return "heap_classify";
    case Phase::kServerEinn:
      return "server_einn";
    case Phase::kNetExchange:
      return "net_exchange";
    case Phase::kBufferFetch:
      return "buffer_fetch";
    case Phase::kServerBatchEinn:
      return "server_batch_einn";
    case Phase::kChBuild:
      return "ch_build";
    case Phase::kChQuery:
      return "ch_query";
  }
  return "unknown";
}

ScopedSpan::ScopedSpan(QueryTracer* tracer, Phase phase) : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  event_.phase = phase;
  event_.query_id = tracer_->query_id();
  event_.ts_us = tracer_->NextTick();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  event_.dur_us = tracer_->NextTick() - event_.ts_us;
  tracer_->Emit(event_);
}

void ScopedSpan::AddArg(const char* name, uint64_t value) {
  if (tracer_ == nullptr || event_.arg_count >= kMaxSpanArgs) return;
  event_.args[event_.arg_count++] = {name, value};
}

}  // namespace senn::obs
