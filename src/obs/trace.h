// Structured per-query tracing: zero cost when disabled, byte-reproducible
// when enabled.
//
// Every executed query decomposes into the phases the paper's evaluation
// charts separately (Section 4, Figs. 10-17): harvesting peer caches over
// the air, local verification (kNN_single / kNN_multiple), classifying the
// candidate heap into one of the six terminal states, and the server
// fallback (EINN) with its storage-engine fetches. A `QueryTracer` records
// one `SpanEvent` per phase and hands it to a `TraceSink` (the Chrome
// trace_event exporter and the per-phase metrics collector live in
// chrome_trace.h).
//
// Determinism. Span timestamps are NOT wall-clock: a span's `ts_us` is the
// query's simulation time in microseconds plus a per-query sequence counter
// (one tick per span begin/end), and `dur_us` is the tick distance between
// begin and end. Both are pure functions of the query's execution path, so
// a fixed-seed run produces a byte-identical trace no matter how many other
// simulations run concurrently in the process (the same guarantee the
// sweep engine gives for metrics).
//
// Cost. Emission sites hold a `QueryTracer*` that is null when tracing is
// off (the `rtree::NodePageHook` pattern): the entire layer then costs one
// pointer compare per span site and produces no observable side effects —
// golden JSON outputs are byte-identical with and without the layer built
// in.
#pragma once

#include <cstdint>

namespace senn::obs {

/// The query phases the evaluation decomposes into (span names).
enum class Phase {
  kPeerHarvest = 0,   // collecting reachable peers' caches
  kVerifySingle = 1,  // kNN_single over each harvested peer
  kVerifyMulti = 2,   // kNN_multiple over the merged certain region
  kHeapClassify = 3,  // terminal heap-state + bounds computation
  kServerEinn = 4,    // server fallback: EINN with shipped bounds
  kNetExchange = 5,   // wireless broadcast/collect/retry exchange
  kBufferFetch = 6,   // storage-engine page fetches under the EINN run
  kServerBatchEinn = 7,  // shared EINN traversal answering a query cluster
  kChBuild = 8,          // contraction-hierarchy preprocessing
  kChQuery = 9,          // one CH upward-search distance query
};
inline constexpr int kPhaseCount = 10;

/// Stable span name ("peer_harvest", "verify_single", ...).
const char* PhaseName(Phase phase);

/// One span argument: a static name plus an integer value.
struct SpanArg {
  const char* name = nullptr;
  uint64_t value = 0;
};

inline constexpr int kMaxSpanArgs = 4;

/// One completed span.
struct SpanEvent {
  Phase phase = Phase::kPeerHarvest;
  /// Trace-wide query identifier (the simulator's query sequence number).
  uint64_t query_id = 0;
  /// Deterministic begin timestamp: sim time (us) + per-query sequence.
  uint64_t ts_us = 0;
  /// Tick distance between span begin and end (>= 1).
  uint64_t dur_us = 0;
  int arg_count = 0;
  SpanArg args[kMaxSpanArgs];
};

/// Receives completed spans. Implementations must not reorder or drop
/// events if they claim byte-reproducible output.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpan(const SpanEvent& span) = 0;
};

/// Per-query tracing context: owns the deterministic tick counter. Created
/// by the driver (the simulator) for each traced query and passed down the
/// phase call chain as an optional pointer.
class QueryTracer {
 public:
  QueryTracer(TraceSink* sink, uint64_t query_id, uint64_t sim_time_us)
      : sink_(sink), query_id_(query_id), base_us_(sim_time_us) {}

  /// Next deterministic timestamp (monotone within the query).
  uint64_t NextTick() { return base_us_ + seq_++; }
  uint64_t query_id() const { return query_id_; }
  void Emit(const SpanEvent& event) { sink_->OnSpan(event); }

 private:
  TraceSink* sink_;
  uint64_t query_id_;
  uint64_t base_us_;
  uint64_t seq_ = 0;
};

/// RAII span. A null tracer makes every operation a no-op, so call sites
/// need no branches beyond constructing the guard.
class ScopedSpan {
 public:
  ScopedSpan(QueryTracer* tracer, Phase phase);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches an integer argument (at most kMaxSpanArgs; extras dropped).
  /// `name` must be a static string.
  void AddArg(const char* name, uint64_t value);
  /// True when a live tracer is attached (lets call sites skip computing
  /// argument values that exist only for the trace).
  bool active() const { return tracer_ != nullptr; }

 private:
  QueryTracer* tracer_;
  SpanEvent event_;
};

}  // namespace senn::obs
