#include "src/obs/metrics.h"

#include <cstdio>

namespace senn::obs {

namespace {

void AppendKv(std::string* out, const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += '"';
  *out += key;
  *out += "\":";
  *out += buf;
}

void AppendKv(std::string* out, const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  *out += '"';
  *out += key;
  *out += "\":";
  *out += buf;
}

}  // namespace

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, stats] : other.histograms_) histograms_[name].Merge(stats);
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const RunningStats* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    AppendKv(&out, name, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{";
    AppendKv(&out, "n", stats.count());
    out += ',';
    AppendKv(&out, "mean", stats.mean());
    out += ',';
    AppendKv(&out, "sum", stats.sum());
    out += ',';
    AppendKv(&out, "min", stats.min());
    out += ',';
    AppendKv(&out, "max", stats.max());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace senn::obs
