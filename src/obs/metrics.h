// Named counters and histograms with deterministic, shard-mergeable output.
//
// A `MetricsRegistry` is the aggregate companion of the span stream: where
// the trace records each query's phases individually, the registry folds
// them into named counters (monotone sums) and histograms (`RunningStats`
// moments). Registries merge the way the sweep engine merges per-seed
// shards — `Merge` is commutative and associative over counters and
// delegates to `RunningStats::Merge` for histograms — so a sharded run
// produces the same registry no matter the thread count.
//
// Iteration order (and therefore `ToJson` output) is the lexicographic
// order of metric names: the registry is a `std::map`, never a hash map,
// because byte-reproducible output is part of the contract.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/common/stats.h"

namespace senn::obs {

class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (created at zero on first use).
  void Inc(const std::string& name, uint64_t delta = 1) { counters_[name] += delta; }

  /// Adds one observation to the named histogram.
  void Observe(const std::string& name, double value) { histograms_[name].Add(value); }

  /// Folds another registry into this one (counters add, histograms merge).
  void Merge(const MetricsRegistry& other);

  uint64_t counter(const std::string& name) const;
  /// Null when the histogram was never observed.
  const RunningStats* histogram(const std::string& name) const;

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, RunningStats>& histograms() const { return histograms_; }

  /// `{"counters":{...},"histograms":{"name":{"n":..,"mean":..,...}}}` with
  /// keys in lexicographic order and doubles rendered %.17g, so two equal
  /// registries serialize byte-identically.
  std::string ToJson() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, RunningStats> histograms_;
};

}  // namespace senn::obs
