// Plain-text serialization for road graphs and POI sets.
//
// The paper digitizes TIGER/LINE shapefiles; this library ships a synthetic
// generator instead, but downstream users with real street vectors can
// digitize them into this format and load them here. The format is a
// line-oriented text file, diff-friendly and trivially produced by any
// script:
//
//   senn-roadnet 1            # magic + version
//   node <x> <y>              # one per node, id = order of appearance
//   edge <a> <b> <class>      # class: highway|secondary|residential|rural
//
//   senn-pois 1               # magic + version
//   poi <id> <x> <y>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/types.h"
#include "src/roadnet/graph.h"

namespace senn::roadnet {

/// Writes the graph in the text format. Edge lengths are not stored (they
/// are recomputed from node positions on load).
Status SaveGraph(const Graph& graph, std::ostream* out);
Status SaveGraphToFile(const Graph& graph, const std::string& path);

/// Parses a graph; rejects malformed input with InvalidArgument carrying the
/// offending line number.
Result<Graph> LoadGraph(std::istream* in);
Result<Graph> LoadGraphFromFile(const std::string& path);

/// POI sets in the same spirit.
Status SavePois(const std::vector<core::Poi>& pois, std::ostream* out);
Status SavePoisToFile(const std::vector<core::Poi>& pois, const std::string& path);
Result<std::vector<core::Poi>> LoadPois(std::istream* in);
Result<std::vector<core::Poi>> LoadPoisFromFile(const std::string& path);

/// Parses a road-class token ("highway", "secondary", "residential",
/// "rural"); NotFound for anything else.
Result<RoadClass> ParseRoadClass(const std::string& token);

}  // namespace senn::roadnet
