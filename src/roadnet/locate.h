// Snapping Cartesian positions onto the road network.
//
// Mobile hosts, query points, and POIs live in the plane; the network kNN
// algorithms need them as EdgePoints. EdgeLocator builds a uniform grid over
// the edges so nearest-edge queries stay fast on county-scale graphs.
#pragma once

#include <vector>

#include "src/geom/vec2.h"
#include "src/roadnet/graph.h"

namespace senn::roadnet {

/// Projects p onto the segment [a, b]; returns the offset (meters from a,
/// clamped to the segment) of the closest point.
double ProjectOntoSegment(geom::Vec2 a, geom::Vec2 b, geom::Vec2 p);

/// Grid-accelerated nearest-edge lookup. The graph must outlive the locator
/// and must not gain edges afterwards.
class EdgeLocator {
 public:
  /// `cell_size` is the grid resolution in meters; pick roughly the typical
  /// edge length.
  EdgeLocator(const Graph* graph, double cell_size = 250.0);

  /// The point on the network nearest to p (invalid when the graph has no
  /// edges). Also reports the snap distance through `out_distance` if given.
  EdgePoint Nearest(geom::Vec2 p, double* out_distance = nullptr) const;

 private:
  struct Candidate {
    EdgeId edge;
    double distance;
    double offset;
  };

  void ScanCell(int cx, int cy, geom::Vec2 p, Candidate* best) const;
  int CellX(double x) const;
  int CellY(double y) const;

  const Graph* graph_;
  double cell_size_;
  geom::Vec2 origin_;
  int cells_x_ = 0;
  int cells_y_ = 0;
  std::vector<std::vector<EdgeId>> cells_;
};

}  // namespace senn::roadnet
