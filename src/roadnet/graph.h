// Road-network modeling graph.
//
// The paper assumes "a digitization process that generates a modeling graph
// from an input spatial network" with junctions, segment endpoints and
// auxiliary points as nodes, and uses Dijkstra's algorithm as the basis for
// network distances (Section 3.4). Road segments carry a class (derived from
// TIGER/LINE categories: primary highways, secondary and connecting roads,
// rural roads) that determines the speed limit mobile hosts obey.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/geom/vec2.h"

namespace senn::roadnet {

using NodeId = int32_t;
using EdgeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// TIGER/LINE-like road categories.
enum class RoadClass : uint8_t {
  kHighway = 0,     // primary highway (A1*)
  kSecondary = 1,   // secondary / connecting road (A2*, A3*)
  kResidential = 2, // local street (A4*)
  kRural = 3,       // rural / unimproved road
};

/// Speed limit for a road class, meters per second.
double SpeedLimitMps(RoadClass road_class);
/// Human-readable class name.
const char* RoadClassName(RoadClass road_class);

/// An undirected road segment between two graph nodes. Length is the
/// Euclidean length of the segment (segments are straight; curved roads are
/// modeled with auxiliary nodes, as in the paper's digitization).
struct Edge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double length = 0.0;
  RoadClass road_class = RoadClass::kResidential;

  /// The node at the other end of the edge.
  NodeId OtherEnd(NodeId from) const { return from == a ? b : a; }
};

/// A position on the network: an edge plus an offset in meters from the
/// edge's `a` endpoint, 0 <= offset <= edge.length.
struct EdgePoint {
  EdgeId edge = kInvalidEdge;
  double offset = 0.0;

  bool IsValid() const { return edge != kInvalidEdge; }
};

/// An undirected road graph with adjacency lists.
class Graph {
 public:
  /// Adds a node at the given position, returning its id.
  NodeId AddNode(geom::Vec2 position);

  /// Adds an undirected edge; length is computed from the node positions.
  /// Self-loops are rejected with InvalidArgument.
  Result<EdgeId> AddEdge(NodeId a, NodeId b, RoadClass road_class);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }
  geom::Vec2 node_position(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const Edge& edge(EdgeId id) const { return edges_[static_cast<size_t>(id)]; }
  /// Edge ids incident to the node.
  const std::vector<EdgeId>& incident_edges(NodeId id) const {
    return adjacency_[static_cast<size_t>(id)];
  }

  /// Cartesian position of a point on the network.
  geom::Vec2 PositionOf(EdgePoint p) const;

  /// True iff every node is reachable from node 0 (or the graph is empty).
  bool IsConnected() const;

  /// Structural validation for tests: id ranges, positive lengths matching
  /// endpoint distance, adjacency symmetry.
  Status Validate() const;

 private:
  std::vector<geom::Vec2> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace senn::roadnet
