#include "src/roadnet/io.h"

#include <fstream>
#include <sstream>

namespace senn::roadnet {

namespace {

constexpr char kGraphMagic[] = "senn-roadnet";
constexpr char kPoiMagic[] = "senn-pois";

Status MalformedLine(size_t line_number, std::string_view what) {
  std::ostringstream msg;
  msg << "line " << line_number << ": " << what;
  return Status::InvalidArgument(msg.str());
}

}  // namespace

Result<RoadClass> ParseRoadClass(const std::string& token) {
  if (token == "highway") return RoadClass::kHighway;
  if (token == "secondary") return RoadClass::kSecondary;
  if (token == "residential") return RoadClass::kResidential;
  if (token == "rural") return RoadClass::kRural;
  return Status::NotFound("unknown road class: " + token);
}

Status SaveGraph(const Graph& graph, std::ostream* out) {
  *out << kGraphMagic << " 1\n";
  out->precision(17);
  for (size_t n = 0; n < graph.node_count(); ++n) {
    geom::Vec2 p = graph.node_position(static_cast<NodeId>(n));
    *out << "node " << p.x << ' ' << p.y << '\n';
  }
  for (size_t e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(static_cast<EdgeId>(e));
    *out << "edge " << edge.a << ' ' << edge.b << ' ' << RoadClassName(edge.road_class)
         << '\n';
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status SaveGraphToFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open for writing: " + path);
  return SaveGraph(graph, &out);
}

Result<Graph> LoadGraph(std::istream* in) {
  std::string line;
  size_t line_number = 0;
  if (!std::getline(*in, line)) return Status::InvalidArgument("empty input");
  ++line_number;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kGraphMagic) return MalformedLine(line_number, "bad magic");
    if (version != 1) return MalformedLine(line_number, "unsupported version");
  }
  Graph graph;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "node") {
      double x = 0, y = 0;
      if (!(fields >> x >> y)) return MalformedLine(line_number, "bad node");
      graph.AddNode({x, y});
    } else if (kind == "edge") {
      long long a = 0, b = 0;
      std::string cls;
      if (!(fields >> a >> b >> cls)) return MalformedLine(line_number, "bad edge");
      Result<RoadClass> road_class = ParseRoadClass(cls);
      if (!road_class.ok()) return MalformedLine(line_number, "bad road class");
      Result<EdgeId> added = graph.AddEdge(static_cast<NodeId>(a),
                                           static_cast<NodeId>(b), *road_class);
      if (!added.ok()) return MalformedLine(line_number, added.status().message());
    } else {
      return MalformedLine(line_number, "unknown record: " + kind);
    }
  }
  return graph;
}

Result<Graph> LoadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  return LoadGraph(&in);
}

Status SavePois(const std::vector<core::Poi>& pois, std::ostream* out) {
  *out << kPoiMagic << " 1\n";
  out->precision(17);
  for (const core::Poi& p : pois) {
    *out << "poi " << p.id << ' ' << p.position.x << ' ' << p.position.y << '\n';
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status SavePoisToFile(const std::vector<core::Poi>& pois, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open for writing: " + path);
  return SavePois(pois, &out);
}

Result<std::vector<core::Poi>> LoadPois(std::istream* in) {
  std::string line;
  size_t line_number = 0;
  if (!std::getline(*in, line)) return Status::InvalidArgument("empty input");
  ++line_number;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kPoiMagic) return MalformedLine(line_number, "bad magic");
    if (version != 1) return MalformedLine(line_number, "unsupported version");
  }
  std::vector<core::Poi> pois;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind != "poi") return MalformedLine(line_number, "unknown record: " + kind);
    long long id = 0;
    double x = 0, y = 0;
    if (!(fields >> id >> x >> y)) return MalformedLine(line_number, "bad poi");
    pois.push_back({id, {x, y}});
  }
  return pois;
}

Result<std::vector<core::Poi>> LoadPoisFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  return LoadPois(&in);
}

}  // namespace senn::roadnet
