#include "src/roadnet/ch.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace senn::roadnet::ch {

namespace {

using HeapItem = std::pair<double, NodeId>;
using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>;

// Min-heap over a caller-owned vector, so queries reuse capacity across
// calls instead of re-allocating two priority_queues per Run.
struct ScratchHeap {
  explicit ScratchHeap(std::vector<HeapItem>* v) : v_(v) { v_->clear(); }
  bool empty() const { return v_->empty(); }
  const HeapItem& top() const { return v_->front(); }
  void push(HeapItem x) {
    v_->push_back(x);
    std::push_heap(v_->begin(), v_->end(), std::greater<HeapItem>());
  }
  void pop() {
    std::pop_heap(v_->begin(), v_->end(), std::greater<HeapItem>());
    v_->pop_back();
  }
  std::vector<HeapItem>* v_;
};

// Search keys fold shortcut weights in the pairwise order the shortcuts
// were built, while the Dijkstra baseline folds original edges strictly
// left-to-right — on the same path the two can differ by accumulated
// rounding (a few ulps per edge). When two distinct paths tie in real
// arithmetic (the even-ring antipode is the canonical case) the internal
// argmin may therefore pick the path whose left-to-right fold is one ulp
// above the one Dijkstra kept. The cure: treat internal sums as
// approximate. Every meeting within this relative slack of the best sum is
// folded, and the minimum *fold* is the answer. Extra candidates are
// harmless — each fold is a real path's fold, so none can undercut the
// Dijkstra minimum — and the slack comfortably dominates the worst-case
// rounding gap (~path_length * 2^-52) for any graph this engine serves.
constexpr double kNearTieSlack = 1e-11;

double AdmitBound(double best_sum) { return best_sum + best_sum * kNearTieSlack; }

// Stall-on-demand, slack-guarded: a settled node whose key a higher-ranked
// neighbor beats by MORE than the near-tie slack lies on no shortest — or
// near-tied — upward path, so expanding it cannot contribute a fold
// candidate. The slack guard keeps the exactness argument intact: every
// path pruned here is worse by more than the worst-case rounding gap. On
// hierarchy-poor graphs (uniform grids) this prunes most of the cone.
bool Stalled(const Hierarchy& h, const detail::SearchSide& side, NodeId v,
             double key) {
  const double stall_bound = key - key * kNearTieSlack;
  const int32_t end = h.up_head()[static_cast<size_t>(v) + 1];
  for (int32_t i = h.up_head()[static_cast<size_t>(v)]; i < end; ++i) {
    NodeId to = h.up_to()[static_cast<size_t>(i)];
    if (side.Reached(to) &&
        side.KeyOf(to) + h.up_weight()[static_cast<size_t>(i)] < stall_bound) {
      return true;
    }
  }
  return false;
}

// One relaxation pass over v's upward CSR row.
void RelaxUpward(const Hierarchy& h, detail::SearchSide& side, ScratchHeap& q,
                 NodeId v, double key) {
  const int32_t end = h.up_head()[static_cast<size_t>(v) + 1];
  for (int32_t i = h.up_head()[static_cast<size_t>(v)]; i < end; ++i) {
    NodeId to = h.up_to()[static_cast<size_t>(i)];
    double nk = key + h.up_weight()[static_cast<size_t>(i)];
    if (!side.Reached(to) || nk < side.KeyOf(to)) {
      side.Label(to, nk, h.up_edge()[static_cast<size_t>(i)]);
      q.push({nk, to});
    }
  }
}

// Reconstructs the winning source→meeting→target path, unpacks every
// shortcut to original edges, and re-folds left-to-right starting from the
// source-side seed offset and ending with the target-side seed offset —
// the exact accumulation order NetworkDistanceOracle's relaxations use, so
// the result is bitwise-comparable to the Dijkstra baseline.
double FoldMeeting(const Hierarchy& h, const detail::SearchSide& fwd,
                   const detail::SearchSide& bwd, NodeId m,
                   std::vector<int32_t>* chain, std::vector<double>* weights,
                   std::vector<std::pair<int32_t, NodeId>>* work) {
  chain->clear();
  NodeId v = m;
  while (fwd.ParentOf(v) != -1) {
    int32_t ei = fwd.ParentOf(v);
    chain->push_back(ei);
    const OverlayEdge& oe = h.edges()[static_cast<size_t>(ei)];
    v = (oe.a == v) ? oe.b : oe.a;
  }
  const NodeId fwd_root = v;
  weights->clear();
  NodeId cur = fwd_root;
  for (size_t i = chain->size(); i-- > 0;) {
    int32_t ei = (*chain)[i];
    h.AppendUnpackedWeights(ei, cur, weights, work);
    const OverlayEdge& oe = h.edges()[static_cast<size_t>(ei)];
    cur = (oe.a == cur) ? oe.b : oe.a;
  }
  v = m;
  while (bwd.ParentOf(v) != -1) {
    int32_t ei = bwd.ParentOf(v);
    h.AppendUnpackedWeights(ei, v, weights, work);
    const OverlayEdge& oe = h.edges()[static_cast<size_t>(ei)];
    v = (oe.a == v) ? oe.b : oe.a;
  }
  double acc = fwd.KeyOf(fwd_root);
  for (double w : *weights) acc += w;
  return acc + bwd.KeyOf(v);
}

}  // namespace

namespace detail {

void SearchSide::Init(size_t n) {
  if (key.size() < n) {
    key.resize(n);
    parent.resize(n);
    stamp.resize(n, 0);
  }
}

void SearchSide::Begin() {
  ++epoch;
  if (epoch == 0) {  // wrapped: reset stamps
    std::fill(stamp.begin(), stamp.end(), 0u);
    epoch = 1;
  }
}

}  // namespace detail

Hierarchy Hierarchy::Build(const Graph& graph, const BuildOptions& options,
                           obs::MetricsRegistry* metrics, obs::QueryTracer* tracer) {
  obs::ScopedSpan span(tracer, obs::Phase::kChBuild);
  Hierarchy h;
  h.graph_ = &graph;
  const size_t n = graph.node_count();
  h.rank_.assign(n, -1);
  h.up_adj_.assign(n, {});

  // Overlay seed: one edge per node pair, parallels collapsed to the
  // minimum length (ties keep the lowest edge id; Dijkstra never relaxes a
  // longer parallel edge, so distances are unaffected).
  struct SeedEdge {
    NodeId a;
    NodeId b;
    double length;
    EdgeId id;
  };
  std::vector<SeedEdge> seeds;
  seeds.reserve(graph.edge_count());
  for (size_t i = 0; i < graph.edge_count(); ++i) {
    const Edge& e = graph.edge(static_cast<EdgeId>(i));
    seeds.push_back({std::min(e.a, e.b), std::max(e.a, e.b), e.length,
                     static_cast<EdgeId>(i)});
  }
  std::stable_sort(seeds.begin(), seeds.end(),
                   [](const SeedEdge& x, const SeedEdge& y) {
                     if (x.a != y.a) return x.a < y.a;
                     if (x.b != y.b) return x.b < y.b;
                     if (x.length < y.length) return true;
                     if (y.length < x.length) return false;
                     return x.id < y.id;
                   });
  std::vector<std::vector<int32_t>> adj(n);
  for (const SeedEdge& s : seeds) {
    if (!h.edges_.empty()) {
      const OverlayEdge& last = h.edges_.back();
      if (last.a == s.a && last.b == s.b) continue;  // parallel duplicate
    }
    int32_t idx = static_cast<int32_t>(h.edges_.size());
    h.edges_.push_back({s.a, s.b, s.length, kInvalidNode, -1, -1});
    adj[static_cast<size_t>(s.a)].push_back(idx);
    adj[static_cast<size_t>(s.b)].push_back(idx);
  }
  h.stats_.input_edges = h.edges_.size();

  std::vector<bool> contracted(n, false);
  std::vector<int32_t> deleted_neighbors(n, 0);
  std::vector<int32_t> depth(n, 0);
  std::vector<double> wkey(n, 0.0);
  std::vector<uint32_t> wstamp(n, 0);
  uint32_t wepoch = 0;
  const int settle_limit = std::max(1, options.witness_settle_limit);

  // Bounded Dijkstra from u over live nodes, avoiding `excluded`. Returns
  // the best-known weight of a u..w path. When the budget runs out this is
  // only an upper bound — still a safe witness, because it is the weight of
  // a real path; and when no path is known it returns kUnreachable, which
  // merely adds a redundant shortcut. Exactness never depends on the budget.
  auto witness = [&](NodeId u, NodeId w, NodeId excluded, double bound) -> double {
    ++wepoch;
    if (wepoch == 0) {
      std::fill(wstamp.begin(), wstamp.end(), 0u);
      wepoch = 1;
    }
    MinHeap q;
    wstamp[static_cast<size_t>(u)] = wepoch;
    wkey[static_cast<size_t>(u)] = 0.0;
    q.push({0.0, u});
    int budget = settle_limit;
    while (!q.empty()) {
      HeapItem top = q.top();
      q.pop();
      NodeId v = top.second;
      if (top.first > wkey[static_cast<size_t>(v)]) continue;  // stale entry
      if (top.first > bound) break;  // cannot beat the shortcut any more
      ++h.stats_.witness_settled;
      if (v == w) break;  // settled the far end: wkey[w] is final
      if (--budget < 0) break;
      for (int32_t ei : adj[static_cast<size_t>(v)]) {
        const OverlayEdge& oe = h.edges_[static_cast<size_t>(ei)];
        NodeId to = (oe.a == v) ? oe.b : oe.a;
        if (to == excluded || contracted[static_cast<size_t>(to)]) continue;
        double nk = top.first + oe.weight;
        if (wstamp[static_cast<size_t>(to)] != wepoch ||
            nk < wkey[static_cast<size_t>(to)]) {
          wstamp[static_cast<size_t>(to)] = wepoch;
          wkey[static_cast<size_t>(to)] = nk;
          q.push({nk, to});
        }
      }
    }
    return (wstamp[static_cast<size_t>(w)] == wepoch)
               ? wkey[static_cast<size_t>(w)]
               : kUnreachable;
  };

  // Adds (or improves) the live edge u—w, u < w. Ties keep the incumbent:
  // deterministic, and the weight is identical anyway.
  auto add_shortcut = [&](NodeId u, NodeId w, double weight, NodeId via,
                          int32_t child_uv, int32_t child_vw) {
    for (int32_t ei : adj[static_cast<size_t>(u)]) {
      OverlayEdge& oe = h.edges_[static_cast<size_t>(ei)];
      NodeId to = (oe.a == u) ? oe.b : oe.a;
      if (to != w) continue;
      if (weight < oe.weight) {
        oe = {u, w, weight, via, child_uv, child_vw};
      }
      return;
    }
    int32_t idx = static_cast<int32_t>(h.edges_.size());
    h.edges_.push_back({u, w, weight, via, child_uv, child_vw});
    adj[static_cast<size_t>(u)].push_back(idx);
    adj[static_cast<size_t>(w)].push_back(idx);
  };

  // Simulates (apply=false) or performs (apply=true) the contraction of v,
  // returning the edge-difference priority: shortcuts needed minus live
  // degree, plus the contracted-neighbors term that spreads contraction
  // evenly across the graph.
  std::vector<std::pair<NodeId, int32_t>> nb;
  auto contraction = [&](NodeId v, bool apply) -> int64_t {
    nb.clear();
    for (int32_t ei : adj[static_cast<size_t>(v)]) {
      const OverlayEdge& oe = h.edges_[static_cast<size_t>(ei)];
      NodeId to = (oe.a == v) ? oe.b : oe.a;
      if (contracted[static_cast<size_t>(to)]) continue;
      nb.push_back({to, ei});
    }
    std::sort(nb.begin(), nb.end());
    int64_t added = 0;
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        double via_weight = h.edges_[static_cast<size_t>(nb[i].second)].weight +
                            h.edges_[static_cast<size_t>(nb[j].second)].weight;
        double alt = witness(nb[i].first, nb[j].first, v, via_weight);
        if (alt <= via_weight) continue;  // a no-worse path survives v
        ++added;
        if (apply) {
          add_shortcut(nb[i].first, nb[j].first, via_weight, v, nb[i].second,
                       nb[j].second);
        }
      }
    }
    if (apply) {
      contracted[static_cast<size_t>(v)] = true;
      for (const auto& [to, ei] : nb) {
        (void)ei;
        ++deleted_neighbors[static_cast<size_t>(to)];
        depth[static_cast<size_t>(to)] =
            std::max(depth[static_cast<size_t>(to)],
                     depth[static_cast<size_t>(v)] + 1);
      }
    }
    // Edge difference dominates; the deleted-neighbors and depth terms
    // spread contraction evenly and cap nesting (hierarchy-poor grids are
    // where the depth term pays: it keeps upward cones shallow).
    return 4 * (added - static_cast<int64_t>(nb.size())) +
           deleted_neighbors[static_cast<size_t>(v)] +
           depth[static_cast<size_t>(v)];
  };

  // Deterministic ordering: a min-heap of (priority, node_id) with lazy
  // re-evaluation. A popped node whose recomputed priority no longer wins
  // is pushed back; a node popped at its true priority is necessarily the
  // minimum (it was the heap top), so every such pop contracts and the
  // loop terminates.
  using OrderItem = std::pair<int64_t, NodeId>;
  std::priority_queue<OrderItem, std::vector<OrderItem>, std::greater<OrderItem>>
      order;
  for (size_t v = 0; v < n; ++v) {
    NodeId node = static_cast<NodeId>(v);
    order.push({contraction(node, false), node});
  }
  int32_t next_rank = 0;
  while (!order.empty()) {
    OrderItem top = order.top();
    order.pop();
    NodeId v = top.second;
    if (contracted[static_cast<size_t>(v)]) continue;
    int64_t current = contraction(v, false);
    if (!order.empty() && OrderItem{current, v} > order.top()) {
      order.push({current, v});
      continue;
    }
    contraction(v, true);
    h.rank_[static_cast<size_t>(v)] = next_rank++;
  }

  for (size_t ei = 0; ei < h.edges_.size(); ++ei) {
    const OverlayEdge& oe = h.edges_[ei];
    NodeId lo = (h.rank_[static_cast<size_t>(oe.a)] < h.rank_[static_cast<size_t>(oe.b)])
                    ? oe.a
                    : oe.b;
    h.up_adj_[static_cast<size_t>(lo)].push_back(static_cast<int32_t>(ei));
    if (oe.middle != kInvalidNode) ++h.stats_.shortcuts;
  }
  // Flatten into the CSR mirror the query hot loops scan.
  h.up_head_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    h.up_head_[v + 1] = h.up_head_[v] + static_cast<int32_t>(h.up_adj_[v].size());
  }
  h.up_to_.reserve(h.edges_.size());
  h.up_weight_.reserve(h.edges_.size());
  h.up_edge_.reserve(h.edges_.size());
  for (size_t v = 0; v < n; ++v) {
    for (int32_t ei : h.up_adj_[v]) {
      const OverlayEdge& oe = h.edges_[static_cast<size_t>(ei)];
      h.up_to_.push_back(oe.a == static_cast<NodeId>(v) ? oe.b : oe.a);
      h.up_weight_.push_back(oe.weight);
      h.up_edge_.push_back(ei);
    }
  }

  if (metrics) {
    metrics->Inc("ch/builds");
    metrics->Inc("ch/build_input_edges", h.stats_.input_edges);
    metrics->Inc("ch/build_shortcuts", h.stats_.shortcuts);
    metrics->Inc("ch/build_witness_settled", h.stats_.witness_settled);
  }
  span.AddArg("input_edges", h.stats_.input_edges);
  span.AddArg("shortcuts", h.stats_.shortcuts);
  span.AddArg("witness_settled", h.stats_.witness_settled);
  return h;
}

void Hierarchy::AppendUnpackedWeights(int32_t e, NodeId from,
                                      std::vector<double>* out) const {
  std::vector<std::pair<int32_t, NodeId>> work;
  AppendUnpackedWeights(e, from, out, &work);
}

void Hierarchy::AppendUnpackedWeights(
    int32_t e, NodeId from, std::vector<double>* out,
    std::vector<std::pair<int32_t, NodeId>>* work) const {
  work->clear();
  work->push_back({e, from});
  while (!work->empty()) {
    auto [edge, via] = work->back();
    work->pop_back();
    const OverlayEdge& oe = edges_[static_cast<size_t>(edge)];
    if (oe.middle == kInvalidNode) {
      out->push_back(oe.weight);
      continue;
    }
    if (via == oe.a) {
      work->push_back({oe.child_b, oe.middle});  // traversed second
      work->push_back({oe.child_a, oe.a});       // traversed first
    } else {
      work->push_back({oe.child_a, oe.middle});
      work->push_back({oe.child_b, oe.b});
    }
  }
}

Query::Query(const Hierarchy* hierarchy, obs::MetricsRegistry* metrics)
    : hier_(hierarchy), metrics_(metrics) {}

double Query::Run(NodeId sa, double ka, NodeId sb, double kb, NodeId ta,
                  double kta, NodeId tb, double ktb, double direct) {
  const size_t n = hier_->node_count();
  fwd_.Init(n);
  bwd_.Init(n);
  fwd_.Begin();
  bwd_.Begin();
  ScratchHeap fq(&fheap_);
  ScratchHeap bq(&bheap_);
  auto seed = [](detail::SearchSide& side, ScratchHeap& q, NodeId v, double k) {
    if (v == kInvalidNode) return;
    if (!side.Reached(v) || k < side.KeyOf(v)) {
      side.Label(v, k, -1);
      q.push({k, v});
    }
  };
  seed(fwd_, fq, sa, ka);
  seed(fwd_, fq, sb, kb);
  seed(bwd_, bq, ta, kta);
  seed(bwd_, bq, tb, ktb);

  double best_sum = kUnreachable;
  meets_.clear();
  auto expand = [&](detail::SearchSide& side, ScratchHeap& q,
                    const detail::SearchSide& other) {
    HeapItem top = q.top();
    q.pop();
    NodeId v = top.second;
    if (top.first > side.KeyOf(v)) return;  // stale entry
    ++settled_;
    // A node stalled by more than the slack lies on no near-tie-optimal
    // path, so it cannot be the winning meeting either.
    if (Stalled(*hier_, side, v, top.first)) return;
    if (other.Reached(v)) {
      double sum = top.first + other.KeyOf(v);
      if (sum < best_sum) best_sum = sum;
      // best_sum only decreases, so a candidate already outside the admit
      // window can never re-enter it — skip recording it.
      if (sum <= AdmitBound(best_sum)) meets_.push_back({sum, v});
    }
    RelaxUpward(*hier_, side, q, v, top.first);
  };
  while (true) {
    // A direction is exhausted when its minimum key can no longer beat (or
    // near-tie) the best meeting; upward keys only grow along relaxations.
    // The slack keeps every near-tied meeting settled on both sides, so
    // its final sum is recorded before the loop stops.
    bool fa = !fq.empty() && fq.top().first < AdmitBound(best_sum);
    bool ba = !bq.empty() && bq.top().first < AdmitBound(best_sum);
    if (!fa && !ba) break;
    if (fa && (!ba || !(bq.top() < fq.top()))) {
      expand(fwd_, fq, bwd_);
    } else {
      expand(bwd_, bq, fwd_);
    }
  }
  double result = direct;
  const double admit = AdmitBound(best_sum);
  for (const auto& [sum, m] : meets_) {
    if (sum > admit) continue;
    double folded = FoldMeeting(*hier_, fwd_, bwd_, m, &chain_scratch_,
                                &weights_scratch_, &unpack_scratch_);
    if (folded < result) result = folded;
  }
  return result;
}

double Query::NodeToNode(NodeId s, NodeId t) {
  const size_t n = hier_->node_count();
  if (s < 0 || t < 0 || static_cast<size_t>(s) >= n || static_cast<size_t>(t) >= n) {
    return kUnreachable;
  }
  return Run(s, 0.0, kInvalidNode, 0.0, t, 0.0, kInvalidNode, 0.0, kUnreachable);
}

double Query::DistanceTo(EdgePoint target) {
  if (!source_.IsValid() || !target.IsValid()) return kUnreachable;
  obs::ScopedSpan span(tracer_, obs::Phase::kChQuery);
  uint64_t before = settled_;
  const Graph& g = *hier_->graph();
  const Edge& se = g.edge(source_.edge);
  const Edge& te = g.edge(target.edge);
  double direct = kUnreachable;
  if (target.edge == source_.edge) {
    direct = std::abs(target.offset - source_.offset);
  }
  double result = Run(se.a, source_.offset, se.b, se.length - source_.offset,
                      te.a, target.offset, te.b, te.length - target.offset, direct);
  if (metrics_) {
    metrics_->Inc("ch/point_queries");
    metrics_->Inc("ch/query_settled", settled_ - before);
  }
  span.AddArg("settled", settled_ - before);
  return result;
}

BucketOracle::BucketOracle(const Hierarchy* hierarchy, obs::MetricsRegistry* metrics)
    : hier_(hierarchy), metrics_(metrics) {}

void BucketOracle::SetSource(EdgePoint source) {
  source_ = source;
  has_source_ = source.IsValid();
  if (!has_source_) return;
  const size_t n = hier_->node_count();
  fwd_.Init(n);
  fwd_.Begin();
  uint64_t before = settled_;
  const Edge& se = hier_->graph()->edge(source.edge);
  ScratchHeap q(&heap_);
  fwd_.Label(se.a, source.offset, -1);
  q.push({source.offset, se.a});
  double to_b = se.length - source.offset;
  if (!fwd_.Reached(se.b) || to_b < fwd_.KeyOf(se.b)) {
    fwd_.Label(se.b, to_b, -1);
    q.push({to_b, se.b});
  }
  // Exhaustive upward sweep: the cached cone answers every later target.
  while (!q.empty()) {
    HeapItem top = q.top();
    q.pop();
    NodeId v = top.second;
    if (top.first > fwd_.KeyOf(v)) continue;  // stale entry
    ++settled_;
    if (Stalled(*hier_, fwd_, v, top.first)) continue;
    RelaxUpward(*hier_, fwd_, q, v, top.first);
  }
  if (metrics_) {
    metrics_->Inc("ch/source_sweeps");
    metrics_->Inc("ch/source_sweep_settled", settled_ - before);
  }
}

double BucketOracle::DistanceTo(EdgePoint target) {
  if (!has_source_ || !target.IsValid()) return kUnreachable;
  obs::ScopedSpan span(tracer_, obs::Phase::kChQuery);
  uint64_t before = settled_;
  const Graph& g = *hier_->graph();
  const Edge& te = g.edge(target.edge);
  double direct = kUnreachable;
  if (target.edge == source_.edge) {
    direct = std::abs(target.offset - source_.offset);
  }
  const size_t n = hier_->node_count();
  bwd_.Init(n);
  bwd_.Begin();
  ScratchHeap q(&heap_);
  bwd_.Label(te.a, target.offset, -1);
  q.push({target.offset, te.a});
  double to_b = te.length - target.offset;
  if (!bwd_.Reached(te.b) || to_b < bwd_.KeyOf(te.b)) {
    bwd_.Label(te.b, to_b, -1);
    q.push({to_b, te.b});
  }
  double best_sum = kUnreachable;
  meets_.clear();
  // The forward cone is complete, so settle-time checks against its final
  // keys cannot miss a meeting below the (slack-widened) stop bound.
  while (!q.empty() && q.top().first < AdmitBound(best_sum)) {
    HeapItem top = q.top();
    q.pop();
    NodeId v = top.second;
    if (top.first > bwd_.KeyOf(v)) continue;  // stale entry
    ++settled_;
    if (Stalled(*hier_, bwd_, v, top.first)) continue;
    if (fwd_.Reached(v)) {
      double sum = top.first + fwd_.KeyOf(v);
      if (sum < best_sum) best_sum = sum;
      if (sum <= AdmitBound(best_sum)) meets_.push_back({sum, v});
    }
    RelaxUpward(*hier_, bwd_, q, v, top.first);
  }
  double result = direct;
  const double admit = AdmitBound(best_sum);
  for (const auto& [sum, m] : meets_) {
    if (sum > admit) continue;
    double folded = FoldMeeting(*hier_, fwd_, bwd_, m, &chain_scratch_,
                                &weights_scratch_, &unpack_scratch_);
    if (folded < result) result = folded;
  }
  if (metrics_) {
    metrics_->Inc("ch/bucket_queries");
    metrics_->Inc("ch/query_settled", settled_ - before);
  }
  span.AddArg("settled", settled_ - before);
  return result;
}

}  // namespace senn::roadnet::ch
