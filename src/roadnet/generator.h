// Synthetic road-network generator.
//
// The paper builds its road networks from TIGER/LINE street vectors (U.S.
// Census Bureau), which we cannot ship. This generator produces networks
// with the same structural features the paper derives from that data:
//   * multiple road classes with distinct speed limits (highways, secondary
//     roads, residential streets, rural roads),
//   * an irregular block structure (jittered grid with random street
//     removals, reconnected so the network stays a single component), and
//   * diagonal highways whose geometric crossings with surface streets are
//     over-passes, NOT intersections — they join the street grid only at
//     designated interchanges, mirroring the paper's over-pass detection.
// All randomness flows through the caller's Rng, so networks are fully
// reproducible from a seed.
#pragma once

#include "src/common/rng.h"
#include "src/roadnet/graph.h"

namespace senn::roadnet {

/// Tuning knobs for the synthetic network. Defaults model a dense urban
/// grid; increase block_spacing_m / removal_fraction for rural areas.
struct RoadNetworkConfig {
  /// Side of the square service area (meters).
  double area_side_m = MilesToMeters(2.0);
  /// Distance between neighboring grid streets (meters).
  double block_spacing_m = 200.0;
  /// Every Nth grid line is a secondary road (faster).
  int secondary_every = 4;
  /// Every Nth grid line is a surface highway.
  int highway_every = 12;
  /// Node positions are jittered by +/- this fraction of the spacing.
  double jitter_fraction = 0.2;
  /// Fraction of residential edges removed to break the perfect grid.
  double removal_fraction = 0.12;
  /// Number of diagonal limited-access highways laid over the grid.
  int diagonal_highways = 1;
  /// A diagonal highway connects to the street grid at every Nth of its
  /// nodes (the rest of its street crossings are over-passes).
  int interchange_every = 6;
  /// Class used for non-highway, non-secondary streets; kResidential for
  /// urban areas, kRural for sparse ones.
  RoadClass local_class = RoadClass::kResidential;
};

/// Generates a connected road network. The result always passes
/// Graph::Validate() and Graph::IsConnected().
Graph GenerateRoadNetwork(const RoadNetworkConfig& config, Rng* rng);

}  // namespace senn::roadnet
