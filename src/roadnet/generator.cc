#include "src/roadnet/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace senn::roadnet {

namespace {

// Minimal union-find for the reconnection pass.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  // Returns true when the union merged two distinct components.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a), rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

struct PendingEdge {
  NodeId a;
  NodeId b;
  RoadClass road_class;
};

}  // namespace

Graph GenerateRoadNetwork(const RoadNetworkConfig& config, Rng* rng) {
  Graph graph;
  const double side = std::max(config.area_side_m, 2.0 * config.block_spacing_m);
  const double spacing = std::max(config.block_spacing_m, 10.0);
  const int n = std::max(2, static_cast<int>(std::floor(side / spacing)) + 1);
  const double jitter = config.jitter_fraction * spacing * 0.5;

  // Grid nodes with jitter, clamped into the area.
  std::vector<NodeId> grid(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (int gy = 0; gy < n; ++gy) {
    for (int gx = 0; gx < n; ++gx) {
      double x = std::clamp(gx * spacing + rng->Uniform(-jitter, jitter), 0.0, side);
      double y = std::clamp(gy * spacing + rng->Uniform(-jitter, jitter), 0.0, side);
      grid[static_cast<size_t>(gy) * static_cast<size_t>(n) + static_cast<size_t>(gx)] =
          graph.AddNode({x, y});
    }
  }
  auto grid_node = [&](int gx, int gy) {
    return grid[static_cast<size_t>(gy) * static_cast<size_t>(n) + static_cast<size_t>(gx)];
  };
  auto line_class = [&](int index) {
    if (config.highway_every > 0 && index % config.highway_every == 0) {
      return RoadClass::kHighway;
    }
    if (config.secondary_every > 0 && index % config.secondary_every == 0) {
      return RoadClass::kSecondary;
    }
    return config.local_class;
  };

  // Candidate grid edges; local streets may be dropped.
  std::vector<PendingEdge> kept, dropped;
  for (int gy = 0; gy < n; ++gy) {
    for (int gx = 0; gx < n; ++gx) {
      if (gx + 1 < n) {
        RoadClass rc = line_class(gy);
        PendingEdge e{grid_node(gx, gy), grid_node(gx + 1, gy), rc};
        bool drop = rc == config.local_class && rng->Bernoulli(config.removal_fraction);
        (drop ? dropped : kept).push_back(e);
      }
      if (gy + 1 < n) {
        RoadClass rc = line_class(gx);
        PendingEdge e{grid_node(gx, gy), grid_node(gx, gy + 1), rc};
        bool drop = rc == config.local_class && rng->Bernoulli(config.removal_fraction);
        (drop ? dropped : kept).push_back(e);
      }
    }
  }

  // Diagonal limited-access highways. Their street crossings are over-passes:
  // no shared node is created there. They touch the grid only at ramps.
  std::vector<PendingEdge> highways;
  for (int h = 0; h < config.diagonal_highways; ++h) {
    // Alternate the two diagonal directions, offset per highway.
    bool rising = (h % 2) == 0;
    double offset = side * (static_cast<double>(h / 2 + 1) /
                            (static_cast<double>(config.diagonal_highways / 2) + 2.0));
    double step = spacing * 1.2;
    NodeId prev = kInvalidNode;
    int sample_index = 0;
    for (double t = 0.0; t <= side * std::sqrt(2.0); t += step, ++sample_index) {
      double u = t / std::sqrt(2.0);
      geom::Vec2 p = rising ? geom::Vec2{u, std::fmod(u + offset, side)}
                            : geom::Vec2{u, std::fmod(side * 2.0 + offset - u, side)};
      if (p.x > side || p.y > side || p.x < 0 || p.y < 0) continue;
      // Break the highway when the wrap-around jumps across the area.
      if (prev != kInvalidNode &&
          geom::Dist(graph.node_position(prev), p) > 3.0 * step) {
        prev = kInvalidNode;
      }
      NodeId node = graph.AddNode(p);
      if (prev != kInvalidNode) {
        highways.push_back({prev, node, RoadClass::kHighway});
      }
      if (config.interchange_every > 0 && sample_index % config.interchange_every == 0) {
        // Ramp to the nearest grid node (an interchange).
        int gx = std::clamp(static_cast<int>(std::round(p.x / spacing)), 0, n - 1);
        int gy = std::clamp(static_cast<int>(std::round(p.y / spacing)), 0, n - 1);
        highways.push_back({node, grid_node(gx, gy), RoadClass::kSecondary});
      }
      prev = node;
    }
  }

  // Reconnect: start from kept + highways, then re-add dropped local streets
  // while more than one component remains.
  UnionFind uf(graph.node_count());
  auto add_edge = [&](const PendingEdge& e) {
    if (e.a == e.b) return;
    // Coincident jittered nodes would create a zero-length edge; skip.
    if (geom::Dist(graph.node_position(e.a), graph.node_position(e.b)) <= 0.0) return;
    Result<EdgeId> r = graph.AddEdge(e.a, e.b, e.road_class);
    if (r.ok()) uf.Union(static_cast<size_t>(e.a), static_cast<size_t>(e.b));
  };
  for (const PendingEdge& e : kept) add_edge(e);
  for (const PendingEdge& e : highways) add_edge(e);
  rng->Shuffle(&dropped);
  for (const PendingEdge& e : dropped) {
    if (uf.Find(static_cast<size_t>(e.a)) != uf.Find(static_cast<size_t>(e.b))) {
      add_edge(e);
    }
  }
  // Isolated highway fragments (possible at area corners) are reattached
  // with a ramp to their nearest grid node.
  for (size_t node = 0; node < graph.node_count(); ++node) {
    if (uf.Find(node) == uf.Find(static_cast<size_t>(grid[0]))) continue;
    geom::Vec2 p = graph.node_position(static_cast<NodeId>(node));
    int gx = std::clamp(static_cast<int>(std::round(p.x / spacing)), 0, n - 1);
    int gy = std::clamp(static_cast<int>(std::round(p.y / spacing)), 0, n - 1);
    NodeId target = grid_node(gx, gy);
    if (target != static_cast<NodeId>(node)) {
      add_edge({static_cast<NodeId>(node), target, RoadClass::kSecondary});
    }
  }
  return graph;
}

}  // namespace senn::roadnet
