#include "src/roadnet/locate.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace senn::roadnet {

double ProjectOntoSegment(geom::Vec2 a, geom::Vec2 b, geom::Vec2 p) {
  geom::Vec2 ab = b - a;
  double len2 = ab.Norm2();
  if (len2 <= 0.0) return 0.0;
  double t = std::clamp((p - a).Dot(ab) / len2, 0.0, 1.0);
  return t * std::sqrt(len2);
}

EdgeLocator::EdgeLocator(const Graph* graph, double cell_size)
    : graph_(graph), cell_size_(std::max(cell_size, 1.0)) {
  // Bounding box of all nodes.
  double min_x = std::numeric_limits<double>::infinity(), min_y = min_x;
  double max_x = -min_x, max_y = -min_x;
  for (size_t n = 0; n < graph_->node_count(); ++n) {
    geom::Vec2 p = graph_->node_position(static_cast<NodeId>(n));
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  if (graph_->node_count() == 0) {
    origin_ = {0, 0};
    return;
  }
  origin_ = {min_x, min_y};
  cells_x_ = std::max(1, static_cast<int>(std::ceil((max_x - min_x) / cell_size_)) + 1);
  cells_y_ = std::max(1, static_cast<int>(std::ceil((max_y - min_y) / cell_size_)) + 1);
  cells_.resize(static_cast<size_t>(cells_x_) * static_cast<size_t>(cells_y_));
  // Register each edge in every cell its segment passes through (covered by
  // rasterizing the segment's bounding cells; edges are short relative to
  // the grid, so this stays near-linear).
  for (size_t e = 0; e < graph_->edge_count(); ++e) {
    const Edge& edge = graph_->edge(static_cast<EdgeId>(e));
    geom::Vec2 a = graph_->node_position(edge.a);
    geom::Vec2 b = graph_->node_position(edge.b);
    int x0 = CellX(std::min(a.x, b.x)), x1 = CellX(std::max(a.x, b.x));
    int y0 = CellY(std::min(a.y, b.y)), y1 = CellY(std::max(a.y, b.y));
    for (int cx = x0; cx <= x1; ++cx) {
      for (int cy = y0; cy <= y1; ++cy) {
        cells_[static_cast<size_t>(cy) * static_cast<size_t>(cells_x_) +
               static_cast<size_t>(cx)]
            .push_back(static_cast<EdgeId>(e));
      }
    }
  }
}

int EdgeLocator::CellX(double x) const {
  return std::clamp(static_cast<int>((x - origin_.x) / cell_size_), 0, cells_x_ - 1);
}

int EdgeLocator::CellY(double y) const {
  return std::clamp(static_cast<int>((y - origin_.y) / cell_size_), 0, cells_y_ - 1);
}

void EdgeLocator::ScanCell(int cx, int cy, geom::Vec2 p, Candidate* best) const {
  if (cx < 0 || cy < 0 || cx >= cells_x_ || cy >= cells_y_) return;
  const std::vector<EdgeId>& bucket =
      cells_[static_cast<size_t>(cy) * static_cast<size_t>(cells_x_) +
             static_cast<size_t>(cx)];
  for (EdgeId eid : bucket) {
    const Edge& e = graph_->edge(eid);
    geom::Vec2 a = graph_->node_position(e.a);
    geom::Vec2 b = graph_->node_position(e.b);
    double offset = ProjectOntoSegment(a, b, p);
    geom::Vec2 closest = e.length > 0.0 ? a + (b - a) * (offset / e.length) : a;
    double d = geom::Dist(p, closest);
    if (d < best->distance) {
      best->distance = d;
      best->edge = eid;
      best->offset = offset;
    }
  }
}

EdgePoint EdgeLocator::Nearest(geom::Vec2 p, double* out_distance) const {
  Candidate best{kInvalidEdge, std::numeric_limits<double>::infinity(), 0.0};
  if (graph_->edge_count() == 0 || cells_.empty()) {
    if (out_distance != nullptr) *out_distance = best.distance;
    return EdgePoint{};
  }
  int cx = CellX(p.x), cy = CellY(p.y);
  // Expand rings of cells until the best distance proves no farther ring can
  // improve on it.
  int max_ring = std::max(cells_x_, cells_y_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (best.edge != kInvalidEdge &&
        best.distance < (static_cast<double>(ring) - 1.0) * cell_size_) {
      break;
    }
    if (ring == 0) {
      ScanCell(cx, cy, p, &best);
      continue;
    }
    for (int dx = -ring; dx <= ring; ++dx) {
      ScanCell(cx + dx, cy - ring, p, &best);
      ScanCell(cx + dx, cy + ring, p, &best);
    }
    for (int dy = -ring + 1; dy <= ring - 1; ++dy) {
      ScanCell(cx - ring, cy + dy, p, &best);
      ScanCell(cx + ring, cy + dy, p, &best);
    }
  }
  if (out_distance != nullptr) *out_distance = best.distance;
  return EdgePoint{best.edge, best.offset};
}

}  // namespace senn::roadnet
