// Contraction hierarchies over the road modeling graph.
//
// Preprocessing contracts nodes one by one in a deterministic order (lazy
// edge-difference heuristic, ties broken by node id per the senn_lint
// determinism contract). Contracting v inserts a shortcut u—w for each pair
// of live neighbors whose shortest u..w connection needs v: a bounded
// *witness search* looks for an alternative path of weight <= w(u,v)+w(v,w)
// avoiding v, and only when none is found is the shortcut added. Skipping a
// shortcut therefore never loses a distance (a no-worse path stays in the
// overlay), and adding one never creates a distance (its weight is a real
// path's weight) — so bidirectional *upward* Dijkstra over the overlay
// settles exactly the Dijkstra distances. Queries report distances by
// unpacking every near-optimal meeting path back to original edges,
// re-folding each left-to-right from the source offset (the exact
// accumulation order NetworkDistanceOracle's relaxations use), and taking
// the minimum fold — which reproduces Dijkstra's min-over-paths-of-folds
// bit for bit even when two distinct paths tie in real arithmetic
// (tests/roadnet/ch_diff_test.cpp holds the proof: bitwise equality over
// grids, rings, degenerate graphs and generated road networks).
#pragma once

#include <cstdint>
#include <vector>

#include "src/roadnet/distance_oracle.h"
#include "src/roadnet/graph.h"

namespace senn::obs {
class MetricsRegistry;
class QueryTracer;
}  // namespace senn::obs

namespace senn::roadnet::ch {

/// Preprocessing knobs.
struct BuildOptions {
  /// Settled-node budget per witness search. Exactness does not depend on
  /// it (an exhausted search just adds a redundant shortcut); it only trades
  /// preprocessing time against overlay size.
  int witness_settle_limit = 64;
};

/// Preprocessing outcome counters (also exported through obs metrics).
struct BuildStats {
  uint64_t input_edges = 0;      ///< overlay seed edges (parallels collapsed)
  uint64_t shortcuts = 0;        ///< shortcut edges in the final overlay
  uint64_t witness_settled = 0;  ///< nodes settled across all witness searches

  friend bool operator==(const BuildStats&, const BuildStats&) = default;
};

/// One overlay edge: an original graph edge (middle == kInvalidNode) or a
/// shortcut standing for child_a (a—middle) followed by child_b (middle—b).
/// Invariant: a < b, and both children are frozen (their rows never change
/// after `middle` was contracted), so unpacking is well-defined.
struct OverlayEdge {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double weight = 0.0;
  NodeId middle = kInvalidNode;
  int32_t child_a = -1;
  int32_t child_b = -1;

  friend bool operator==(const OverlayEdge&, const OverlayEdge&) = default;
};

/// The preprocessed hierarchy: contraction ranks plus the overlay graph in
/// upward-adjacency form. Immutable after Build; shared by any number of
/// Query / BucketOracle instances (const access only).
class Hierarchy {
 public:
  /// Preprocesses `graph` (which must outlive the hierarchy). Deterministic:
  /// two builds over the same graph produce identical ranks, edges and
  /// stats. Emits a ch_build span via `tracer` and ch/* counters via
  /// `metrics` when given (both may be null).
  static Hierarchy Build(const Graph& graph, const BuildOptions& options = {},
                         obs::MetricsRegistry* metrics = nullptr,
                         obs::QueryTracer* tracer = nullptr);

  const Graph* graph() const { return graph_; }
  const BuildStats& stats() const { return stats_; }
  /// rank()[v] is v's contraction position (0 = contracted first).
  const std::vector<int32_t>& rank() const { return rank_; }
  const std::vector<OverlayEdge>& edges() const { return edges_; }
  /// Overlay edge indices incident to n whose other endpoint ranks higher.
  const std::vector<int32_t>& upward(NodeId n) const {
    return up_adj_[static_cast<size_t>(n)];
  }
  size_t node_count() const { return rank_.size(); }

  /// Flat CSR mirror of upward(): the query hot loops scan these contiguous
  /// arrays instead of chasing overlay-edge rows through an index.
  /// up_head()[v]..up_head()[v+1] index up_to()/up_weight()/up_edge().
  const std::vector<int32_t>& up_head() const { return up_head_; }
  const std::vector<NodeId>& up_to() const { return up_to_; }
  const std::vector<double>& up_weight() const { return up_weight_; }
  const std::vector<int32_t>& up_edge() const { return up_edge_; }

  /// Appends the original-edge weights of overlay edge `e`, traversed from
  /// endpoint `from`, in walk order (iterative: safe for deeply nested
  /// shortcut chains from path-like graphs). The overload with `work`
  /// reuses the caller's stack across calls (the query fold path).
  void AppendUnpackedWeights(int32_t e, NodeId from, std::vector<double>* out) const;
  void AppendUnpackedWeights(int32_t e, NodeId from, std::vector<double>* out,
                             std::vector<std::pair<int32_t, NodeId>>* work) const;

 private:
  const Graph* graph_ = nullptr;
  BuildStats stats_;
  std::vector<int32_t> rank_;
  std::vector<OverlayEdge> edges_;
  std::vector<std::vector<int32_t>> up_adj_;
  std::vector<int32_t> up_head_;
  std::vector<NodeId> up_to_;
  std::vector<double> up_weight_;
  std::vector<int32_t> up_edge_;
};

namespace detail {

/// Scratch state for one direction of an upward search: epoch-stamped
/// tentative keys and parent overlay edges, reusable across queries without
/// reallocation (the Router idiom).
struct SearchSide {
  std::vector<double> key;
  std::vector<int32_t> parent;
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Init(size_t n);
  void Begin();
  bool Reached(NodeId v) const {
    return stamp[static_cast<size_t>(v)] == epoch;
  }
  double KeyOf(NodeId v) const { return key[static_cast<size_t>(v)]; }
  int32_t ParentOf(NodeId v) const { return parent[static_cast<size_t>(v)]; }
  void Label(NodeId v, double k, int32_t p) {
    size_t i = static_cast<size_t>(v);
    stamp[i] = epoch;
    key[i] = k;
    parent[i] = p;
  }
};

}  // namespace detail

/// Point-to-point oracle: one bidirectional upward search per DistanceTo.
/// Exact (not approximate); see the header comment for why.
class Query final : public DistanceOracle {
 public:
  explicit Query(const Hierarchy* hierarchy, obs::MetricsRegistry* metrics = nullptr);

  void SetSource(EdgePoint source) override { source_ = source; }
  double DistanceTo(EdgePoint target) override;
  const char* name() const override { return "ch"; }
  uint64_t settled_nodes() const override { return settled_; }

  /// Node-to-node distance (test hook: bitwise-equal to DijkstraFrom).
  double NodeToNode(NodeId s, NodeId t);

  /// Attaches a tracer for ch_query spans (null detaches).
  void set_tracer(obs::QueryTracer* tracer) { tracer_ = tracer; }

 private:
  double Run(NodeId sa, double ka, NodeId sb, double kb, NodeId ta, double kta,
             NodeId tb, double ktb, double direct);

  const Hierarchy* hier_;
  obs::MetricsRegistry* metrics_;
  obs::QueryTracer* tracer_ = nullptr;
  EdgePoint source_;
  detail::SearchSide fwd_;
  detail::SearchSide bwd_;
  std::vector<std::pair<double, NodeId>> meets_;
  std::vector<int32_t> chain_scratch_;
  std::vector<double> weights_scratch_;
  std::vector<std::pair<int32_t, NodeId>> unpack_scratch_;
  std::vector<std::pair<double, NodeId>> fheap_;
  std::vector<std::pair<double, NodeId>> bheap_;
  uint64_t settled_ = 0;
};

/// Many-to-one oracle for IER's access pattern: SetSource runs ONE
/// exhaustive upward sweep and caches it; each DistanceTo then runs only the
/// (small) target-side sweep against the cached distances — the CH analogue
/// of RPHAST / bucket queries. Same bitwise-exactness contract as Query.
class BucketOracle final : public DistanceOracle {
 public:
  explicit BucketOracle(const Hierarchy* hierarchy,
                        obs::MetricsRegistry* metrics = nullptr);

  void SetSource(EdgePoint source) override;
  double DistanceTo(EdgePoint target) override;
  const char* name() const override { return "ch"; }
  uint64_t settled_nodes() const override { return settled_; }

  void set_tracer(obs::QueryTracer* tracer) { tracer_ = tracer; }

 private:
  const Hierarchy* hier_;
  obs::MetricsRegistry* metrics_;
  obs::QueryTracer* tracer_ = nullptr;
  EdgePoint source_;
  bool has_source_ = false;
  detail::SearchSide fwd_;
  detail::SearchSide bwd_;
  std::vector<std::pair<double, NodeId>> meets_;
  std::vector<int32_t> chain_scratch_;
  std::vector<double> weights_scratch_;
  std::vector<std::pair<int32_t, NodeId>> unpack_scratch_;
  std::vector<std::pair<double, NodeId>> heap_;
  uint64_t settled_ = 0;
};

}  // namespace senn::roadnet::ch
