// Shortest paths over the road graph: Dijkstra (the paper's stated basis for
// network distance) plus an A* router for mobile-host trip planning, and a
// NetworkDistanceOracle that answers network distances from a fixed source
// point to arbitrary points with incremental, bound-limited expansion — the
// access pattern of the SNNN / IER algorithm (Algorithm 2).
#pragma once

#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "src/roadnet/graph.h"

namespace senn::roadnet {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source Dijkstra from `source`. Returns the distance (meters) to
/// every node; unreachable nodes get kUnreachable. If `max_distance` is
/// given, the search stops expanding beyond it (distances above the bound
/// may be reported as kUnreachable).
std::vector<double> DijkstraFrom(const Graph& graph, NodeId source,
                                 std::optional<double> max_distance = std::nullopt);

/// Reusable A* point-to-point router with epoch-stamped scratch arrays, so
/// repeated route queries do not reallocate. The Euclidean distance is an
/// admissible heuristic because every edge length equals the straight-line
/// distance of its endpoints.
class Router {
 public:
  explicit Router(const Graph* graph);

  /// Shortest node path from src to dst (inclusive). Empty when unreachable.
  /// A path from a node to itself is {src}.
  std::vector<NodeId> FindPath(NodeId src, NodeId dst);

  /// Length (meters) of the last path found, or kUnreachable.
  double last_path_length() const { return last_length_; }

 private:
  struct QueueItem {
    double f;  // g + heuristic
    NodeId node;
  };
  struct Greater {
    bool operator()(const QueueItem& a, const QueueItem& b) const { return a.f > b.f; }
  };

  void Touch(NodeId n);

  const Graph* graph_;
  std::vector<double> g_;
  std::vector<NodeId> came_from_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  double last_length_ = kUnreachable;
};

/// Network distances from a fixed source EdgePoint to arbitrary EdgePoints.
///
/// Internally a multi-source Dijkstra seeded at the two endpoints of the
/// source edge (with the corresponding sub-edge offsets), expanded lazily up
/// to the largest bound requested so far. DistanceTo() also handles the
/// same-edge shortcut where the direct along-edge distance wins.
class NetworkDistanceOracle {
 public:
  NetworkDistanceOracle(const Graph* graph, EdgePoint source);

  /// Network distance (meters) from the source point to `target`;
  /// kUnreachable when no path exists.
  double DistanceTo(EdgePoint target);

  /// Expands the internal search until every node with distance <= bound is
  /// settled (idempotent; bounds only grow).
  void EnsureExpanded(double bound);

  /// Number of settled nodes (diagnostic / test hook).
  size_t settled_count() const { return settled_count_; }

 private:
  struct QueueItem {
    double dist;
    NodeId node;
  };
  struct Greater {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      return a.dist > b.dist;
    }
  };

  double NodeDistance(NodeId n);

  const Graph* graph_;
  EdgePoint source_;
  std::vector<double> dist_;
  std::vector<bool> settled_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, Greater> frontier_;
  double expanded_to_ = 0.0;
  size_t settled_count_ = 0;
};

/// One-shot network distance between two points on the network.
double NetworkDistance(const Graph& graph, EdgePoint from, EdgePoint to);

}  // namespace senn::roadnet
