// Pluggable network-distance oracles for the SNNN / IER pattern.
//
// Algorithm 2 fixes a query point and then asks for network distances to a
// stream of candidate POIs, so the natural interface is SetSource once /
// DistanceTo many. `DijkstraOracle` wraps the incremental bound-limited
// NetworkDistanceOracle (the paper's stated basis) and is the default;
// ch::Query and ch::BucketOracle (ch.h) implement the same interface on a
// contraction hierarchy, proven bitwise-equal by tests/roadnet/ch_diff_test.
#pragma once

#include <cstdint>
#include <optional>

#include "src/roadnet/graph.h"
#include "src/roadnet/shortest_path.h"

namespace senn::roadnet {

/// A network-distance oracle with IER's access pattern: fix the source
/// point, then answer distances to arbitrary targets. Implementations must
/// be deterministic — the same (graph, source, target) always yields the
/// same double, independent of call order or history.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Fixes the source point. Must be called before DistanceTo; calling it
  /// again retargets the oracle (any per-source state is rebuilt).
  virtual void SetSource(EdgePoint source) = 0;

  /// Network distance (meters) from the current source to `target`;
  /// kUnreachable when no path exists.
  virtual double DistanceTo(EdgePoint target) = 0;

  /// Stable oracle name for CLI flags / bench CSV columns.
  virtual const char* name() const = 0;

  /// Cumulative settled-node count across all queries since construction
  /// (the cost driver both Dijkstra and CH searches share).
  virtual uint64_t settled_nodes() const = 0;
};

/// The baseline: one incremental multi-source Dijkstra per source, expanded
/// lazily as IER asks for farther candidates. Byte-identical to constructing
/// a NetworkDistanceOracle inline (it IS one), so SnnnProcessor's default
/// path keeps its golden outputs.
class DijkstraOracle final : public DistanceOracle {
 public:
  explicit DijkstraOracle(const Graph* graph) : graph_(graph) {}

  void SetSource(EdgePoint source) override {
    if (inner_.has_value()) settled_before_ += inner_->settled_count();
    inner_.emplace(graph_, source);
  }

  double DistanceTo(EdgePoint target) override { return inner_->DistanceTo(target); }

  const char* name() const override { return "dijkstra"; }

  uint64_t settled_nodes() const override {
    return settled_before_ + (inner_.has_value() ? inner_->settled_count() : 0);
  }

 private:
  const Graph* graph_;
  std::optional<NetworkDistanceOracle> inner_;
  uint64_t settled_before_ = 0;
};

}  // namespace senn::roadnet
