#include "src/roadnet/shortest_path.h"

#include <algorithm>
#include <cmath>

namespace senn::roadnet {

std::vector<double> DijkstraFrom(const Graph& graph, NodeId source,
                                 std::optional<double> max_distance) {
  std::vector<double> dist(graph.node_count(), kUnreachable);
  if (source < 0 || static_cast<size_t>(source) >= graph.node_count()) return dist;
  struct Item {
    double d;
    NodeId n;
  };
  auto greater = [](const Item& a, const Item& b) { return a.d > b.d; };
  std::priority_queue<Item, std::vector<Item>, decltype(greater)> queue(greater);
  dist[static_cast<size_t>(source)] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    Item item = queue.top();
    queue.pop();
    if (item.d > dist[static_cast<size_t>(item.n)]) continue;  // stale entry
    if (max_distance.has_value() && item.d > *max_distance) break;
    for (EdgeId eid : graph.incident_edges(item.n)) {
      const Edge& e = graph.edge(eid);
      NodeId other = e.OtherEnd(item.n);
      double nd = item.d + e.length;
      if (nd < dist[static_cast<size_t>(other)]) {
        dist[static_cast<size_t>(other)] = nd;
        queue.push({nd, other});
      }
    }
  }
  return dist;
}

Router::Router(const Graph* graph)
    : graph_(graph),
      g_(graph->node_count(), kUnreachable),
      came_from_(graph->node_count(), kInvalidNode),
      stamp_(graph->node_count(), 0) {}

void Router::Touch(NodeId n) {
  size_t i = static_cast<size_t>(n);
  if (stamp_[i] != epoch_) {
    stamp_[i] = epoch_;
    g_[i] = kUnreachable;
    came_from_[i] = kInvalidNode;
  }
}

std::vector<NodeId> Router::FindPath(NodeId src, NodeId dst) {
  last_length_ = kUnreachable;
  if (src < 0 || dst < 0 || static_cast<size_t>(src) >= graph_->node_count() ||
      static_cast<size_t>(dst) >= graph_->node_count()) {
    return {};
  }
  ++epoch_;
  if (epoch_ == 0) {  // wrapped: reset stamps
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  geom::Vec2 goal = graph_->node_position(dst);
  std::priority_queue<QueueItem, std::vector<QueueItem>, Greater> open;
  Touch(src);
  g_[static_cast<size_t>(src)] = 0.0;
  open.push({geom::Dist(graph_->node_position(src), goal), src});
  while (!open.empty()) {
    QueueItem item = open.top();
    open.pop();
    Touch(item.node);
    double g_here = g_[static_cast<size_t>(item.node)];
    // Stale-entry check via recomputed f.
    if (item.f > g_here + geom::Dist(graph_->node_position(item.node), goal) + 1e-9) {
      continue;
    }
    if (item.node == dst) {
      last_length_ = g_here;
      std::vector<NodeId> path;
      for (NodeId n = dst; n != kInvalidNode; n = came_from_[static_cast<size_t>(n)]) {
        path.push_back(n);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (EdgeId eid : graph_->incident_edges(item.node)) {
      const Edge& e = graph_->edge(eid);
      NodeId other = e.OtherEnd(item.node);
      Touch(other);
      double ng = g_here + e.length;
      if (ng < g_[static_cast<size_t>(other)]) {
        g_[static_cast<size_t>(other)] = ng;
        came_from_[static_cast<size_t>(other)] = item.node;
        open.push({ng + geom::Dist(graph_->node_position(other), goal), other});
      }
    }
  }
  return {};
}

NetworkDistanceOracle::NetworkDistanceOracle(const Graph* graph, EdgePoint source)
    : graph_(graph),
      source_(source),
      dist_(graph->node_count(), kUnreachable),
      settled_(graph->node_count(), false) {
  const Edge& e = graph_->edge(source_.edge);
  double to_a = source_.offset;
  double to_b = e.length - source_.offset;
  if (to_a < dist_[static_cast<size_t>(e.a)]) {
    dist_[static_cast<size_t>(e.a)] = to_a;
    frontier_.push({to_a, e.a});
  }
  if (to_b < dist_[static_cast<size_t>(e.b)]) {
    dist_[static_cast<size_t>(e.b)] = to_b;
    frontier_.push({to_b, e.b});
  }
}

void NetworkDistanceOracle::EnsureExpanded(double bound) {
  while (!frontier_.empty() && frontier_.top().dist <= bound) {
    QueueItem item = frontier_.top();
    frontier_.pop();
    size_t i = static_cast<size_t>(item.node);
    if (settled_[i] || item.dist > dist_[i]) continue;
    settled_[i] = true;
    ++settled_count_;
    for (EdgeId eid : graph_->incident_edges(item.node)) {
      const Edge& e = graph_->edge(eid);
      NodeId other = e.OtherEnd(item.node);
      double nd = item.dist + e.length;
      if (nd < dist_[static_cast<size_t>(other)]) {
        dist_[static_cast<size_t>(other)] = nd;
        frontier_.push({nd, other});
      }
    }
  }
  expanded_to_ = std::max(expanded_to_, bound);
}

double NetworkDistanceOracle::NodeDistance(NodeId n) {
  size_t i = static_cast<size_t>(n);
  while (!settled_[i] && !frontier_.empty()) {
    EnsureExpanded(frontier_.top().dist);
  }
  return dist_[i];
}

double NetworkDistanceOracle::DistanceTo(EdgePoint target) {
  const Edge& e = graph_->edge(target.edge);
  double best = kUnreachable;
  if (target.edge == source_.edge) {
    best = std::abs(target.offset - source_.offset);
  }
  double via_a = NodeDistance(e.a);
  if (via_a < kUnreachable) best = std::min(best, via_a + target.offset);
  double via_b = NodeDistance(e.b);
  if (via_b < kUnreachable) best = std::min(best, via_b + (e.length - target.offset));
  return best;
}

double NetworkDistance(const Graph& graph, EdgePoint from, EdgePoint to) {
  NetworkDistanceOracle oracle(&graph, from);
  return oracle.DistanceTo(to);
}

}  // namespace senn::roadnet
