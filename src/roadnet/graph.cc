#include "src/roadnet/graph.h"

#include <cmath>
#include <vector>

namespace senn::roadnet {

double SpeedLimitMps(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kHighway:
      return MphToMps(65.0);
    case RoadClass::kSecondary:
      return MphToMps(45.0);
    case RoadClass::kResidential:
      return MphToMps(30.0);
    case RoadClass::kRural:
      return MphToMps(55.0);
  }
  return MphToMps(30.0);
}

const char* RoadClassName(RoadClass road_class) {
  switch (road_class) {
    case RoadClass::kHighway:
      return "highway";
    case RoadClass::kSecondary:
      return "secondary";
    case RoadClass::kResidential:
      return "residential";
    case RoadClass::kRural:
      return "rural";
  }
  return "unknown";
}

NodeId Graph::AddNode(geom::Vec2 position) {
  nodes_.push_back(position);
  adjacency_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<EdgeId> Graph::AddEdge(NodeId a, NodeId b, RoadClass road_class) {
  if (a == b) return Status::InvalidArgument("self-loop edge");
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= nodes_.size() ||
      static_cast<size_t>(b) >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  Edge e;
  e.a = a;
  e.b = b;
  e.length = geom::Dist(nodes_[static_cast<size_t>(a)], nodes_[static_cast<size_t>(b)]);
  e.road_class = road_class;
  edges_.push_back(e);
  EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  adjacency_[static_cast<size_t>(a)].push_back(id);
  adjacency_[static_cast<size_t>(b)].push_back(id);
  return id;
}

geom::Vec2 Graph::PositionOf(EdgePoint p) const {
  const Edge& e = edge(p.edge);
  geom::Vec2 pa = node_position(e.a);
  geom::Vec2 pb = node_position(e.b);
  if (e.length <= 0.0) return pa;
  double t = p.offset / e.length;
  return pa + (pb - pa) * t;
}

bool Graph::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (EdgeId eid : adjacency_[static_cast<size_t>(n)]) {
      NodeId other = edges_[static_cast<size_t>(eid)].OtherEnd(n);
      if (!seen[static_cast<size_t>(other)]) {
        seen[static_cast<size_t>(other)] = true;
        ++visited;
        stack.push_back(other);
      }
    }
  }
  return visited == nodes_.size();
}

Status Graph::Validate() const {
  if (adjacency_.size() != nodes_.size()) return Status::Internal("adjacency size mismatch");
  std::vector<size_t> degree(nodes_.size(), 0);
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (e.a < 0 || e.b < 0 || static_cast<size_t>(e.a) >= nodes_.size() ||
        static_cast<size_t>(e.b) >= nodes_.size()) {
      return Status::Internal("edge endpoint out of range");
    }
    if (e.a == e.b) return Status::Internal("self-loop");
    double expected =
        geom::Dist(nodes_[static_cast<size_t>(e.a)], nodes_[static_cast<size_t>(e.b)]);
    if (std::abs(e.length - expected) > 1e-6) return Status::Internal("stale edge length");
    if (e.length <= 0.0) return Status::Internal("non-positive edge length");
    ++degree[static_cast<size_t>(e.a)];
    ++degree[static_cast<size_t>(e.b)];
  }
  size_t adjacency_total = 0;
  for (size_t n = 0; n < adjacency_.size(); ++n) {
    for (EdgeId eid : adjacency_[n]) {
      if (eid < 0 || static_cast<size_t>(eid) >= edges_.size()) {
        return Status::Internal("adjacency references unknown edge");
      }
      const Edge& e = edges_[static_cast<size_t>(eid)];
      if (static_cast<size_t>(e.a) != n && static_cast<size_t>(e.b) != n) {
        return Status::Internal("adjacency references non-incident edge");
      }
    }
    adjacency_total += adjacency_[n].size();
  }
  if (adjacency_total != 2 * edges_.size()) return Status::Internal("adjacency count mismatch");
  return Status::OK();
}

}  // namespace senn::roadnet
