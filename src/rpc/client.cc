#include "src/rpc/client.h"

#include <string>
#include <utility>

namespace senn::rpc {
namespace {

Status FromErrorReply(const ErrorReply& err) {
  const std::string msg =
      std::string("server error [") + ErrorCodeName(err.code) + "]: " + err.message;
  switch (err.code) {
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kMalformedFrame:
    case ErrorCode::kUnsupportedOpcode:
      return Status::InvalidArgument(msg);
    case ErrorCode::kOverloaded:
      return Status::FailedPrecondition(msg);
    case ErrorCode::kInternal:
      return Status::Internal(msg);
  }
  return Status::Internal(msg);
}

}  // namespace

Result<core::ServerReply> Client::Knn(const KnnRequest& request) {
  const uint64_t id = SendKnn(request);
  Status st = Flush();
  if (!st.ok()) return st;
  return Wait(id);
}

uint64_t Client::SendKnn(const KnnRequest& request) {
  const uint64_t id = next_id_++;
  EncodeKnnRequest(id, request, &outbox_);
  ++inflight_;
  return id;
}

Status Client::Flush() {
  if (outbox_.empty()) return Status::OK();
  Status st = transport_->Send(outbox_.data(), outbox_.size());
  outbox_.clear();
  return st;
}

Result<core::ServerReply> Client::Wait(uint64_t request_id) {
  Status st = Flush();
  if (!st.ok()) return st;
  for (;;) {
    auto it = done_.find(request_id);
    if (it != done_.end()) {
      Result<core::ServerReply> result = std::move(it->second);
      done_.erase(it);
      if (inflight_ > 0) --inflight_;
      return result;
    }
    st = Pump();
    if (!st.ok()) return st;
  }
}

Status Client::Ping() {
  const uint64_t id = next_id_++;
  EncodePing(id, &outbox_);
  Status st = Flush();
  if (!st.ok()) return st;
  while (pongs_.find(id) == pongs_.end()) {
    st = Pump();
    if (!st.ok()) return st;
  }
  pongs_.erase(id);
  return Status::OK();
}

Status Client::Pump() {
  const size_t had = decoder_.pending();
  std::vector<uint8_t> buf;
  while (decoder_.pending() == had) {
    buf.clear();
    Status st = transport_->Receive(&buf);
    if (!st.ok()) return st;
    st = decoder_.Feed(buf.data(), buf.size());
    if (!st.ok()) {
      return Status::Internal("malformed reply stream: " + st.message());
    }
  }
  Frame frame;
  while (decoder_.Next(&frame)) FileFrame(std::move(frame));
  return Status::OK();
}

void Client::FileFrame(Frame frame) {
  const uint64_t id = frame.header.request_id;
  reply_log_.push_back(id);
  switch (frame.opcode()) {
    case Opcode::kKnnReply: {
      Result<core::ServerReply> reply = DecodeKnnReply(frame.payload);
      done_.emplace(id, std::move(reply));
      break;
    }
    case Opcode::kError: {
      Result<ErrorReply> err = DecodeError(frame.payload);
      Status st = err.ok() ? FromErrorReply(*err)
                           : Status::Internal("undecodable kError reply: " +
                                              err.status().message());
      done_.emplace(id, Result<core::ServerReply>(std::move(st)));
      break;
    }
    case Opcode::kPong:
      pongs_[id] = true;
      break;
    default:
      // A server never sends requests; file it as an error so a Wait on
      // this id (if any) fails loudly instead of hanging.
      done_.emplace(id, Result<core::ServerReply>(Status::Internal(
                            "unexpected opcode in the reply stream")));
      break;
  }
}

}  // namespace senn::rpc
