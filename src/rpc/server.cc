#include "src/rpc/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"

namespace senn::rpc {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Server::Server(core::SpatialServer* spatial, ServerOptions options,
               obs::MetricsRegistry* metrics)
    : options_(std::move(options)),
      service_(spatial, options_.service, metrics),
      metrics_(metrics) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not a numeric IPv4 bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // Read back the bound port (meaningful when options_.port was 0).
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound), &len) < 0) {
    Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);

  Status st = SetNonBlocking(listen_fd_);
  if (st.ok() && ::pipe(wake_fds_) < 0) st = Errno("pipe");
  if (st.ok()) st = SetNonBlocking(wake_fds_[0]);
  if (!st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    return st;
  }

  started_ = true;
  running_.store(true, std::memory_order_release);
  work_stop_ = false;
  const int n_workers = std::max(1, options_.worker_threads);
  workers_.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  network_thread_ = std::thread([this] { NetworkLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  running_.store(false, std::memory_order_release);
  WakeNetwork();
  if (network_thread_.joinable()) network_thread_.join();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // The network thread closed every connection on exit; tear down the
  // listener and the wakeup pipe here.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  work_.clear();
  done_.clear();
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.frames_received = frames_received_.load(std::memory_order_relaxed);
  c.groups_dispatched = groups_dispatched_.load(std::memory_order_relaxed);
  c.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  c.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  return c;
}

void Server::WakeNetwork() {
  const uint8_t byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t rc = ::write(wake_fds_[1], &byte, 1);
}

void Server::NetworkLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pollfd slot (0 = not a conn)
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfd_conn.push_back(0);
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfd_conn.push_back(0);
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.out_off < conn.outbuf.size()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
      pfd_conn.push_back(id);
    }

    int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; Stop() will clean up
    }
    if (!running_.load(std::memory_order_acquire)) break;

    if (pfds[0].revents & POLLIN) {
      uint8_t drain[256];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    DrainCompletions();
    if (pfds[1].revents & POLLIN) AcceptReady();

    std::vector<uint64_t> to_close;
    for (size_t i = 2; i < pfds.size(); ++i) {
      const uint64_t id = pfd_conn[i];
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed by an earlier completion
      Connection* conn = &it->second;
      bool alive = true;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        alive = HandleReadable(conn);
      }
      if (alive) {
        DispatchReady(conn);
        alive = FlushWrites(conn);
      }
      if (!alive) to_close.push_back(id);
    }
    for (uint64_t id : to_close) CloseConnection(id);
  }
  // Shutdown: close every connection (workers may still hold groups; their
  // completions are dropped in Stop()).
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(id);
}

void Server::AcceptReady() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: drained the accept queue; anything else: try again on the
      // next poll round.
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto [it, inserted] = conns_.emplace(id, Connection(options_.max_payload));
    it->second.fd = fd;
    it->second.id = id;
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Server::HandleReadable(Connection* conn) {
  uint8_t buf[65536];
  for (;;) {
    ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      if (!conn->decoder.poisoned()) {
        Status st = conn->decoder.Feed(buf, static_cast<size_t>(r));
        if (!st.ok()) {
          // Framing error: answer what decoded cleanly, describe the
          // corruption in a kError frame (request id 0 — no frame boundary
          // to attribute it to), and close once everything is flushed.
          framing_errors_.fetch_add(1, std::memory_order_relaxed);
          conn->close_requested = true;
        }
      }
      // else: discard bytes after the poison point; the close is pending.
      continue;
    }
    if (r == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // read error
  }
  Frame frame;
  while (conn->decoder.Next(&frame)) {
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    conn->backlog.push_back(std::move(frame));
  }
  return true;
}

void Server::DispatchReady(Connection* conn) {
  if (conn->group_in_flight || conn->backlog.empty()) {
    // A framing-error close with nothing left to answer still owes the
    // error frame; emit it as soon as the backlog is empty.
    if (!conn->group_in_flight && conn->backlog.empty() && conn->close_requested &&
        conn->decoder.poisoned() && !conn->error_sent) {
      ErrorReply err{ErrorCode::kMalformedFrame, conn->decoder.error().message()};
      EncodeError(0, err, &conn->outbuf);
      conn->error_sent = true;
    }
    return;
  }

  const size_t n = conn->backlog.size();
  if (options_.max_inflight_requests > 0 &&
      inflight_requests_ + n > options_.max_inflight_requests) {
    // Load shed: answer the whole burst with kOverloaded error replies
    // right here on the network thread — cheap encodes, no engine work.
    for (const Frame& f : conn->backlog) {
      ErrorReply err{ErrorCode::kOverloaded, "server overloaded: in-flight request cap"};
      EncodeError(f.header.request_id, err, &conn->outbuf);
    }
    requests_shed_.fetch_add(n, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_->Inc("rpc/shed", n);
    }
    conn->backlog.clear();
    return;
  }

  Group group;
  group.conn_id = conn->id;
  group.frames = std::move(conn->backlog);
  conn->backlog.clear();
  conn->group_in_flight = true;
  inflight_requests_ += n;
  groups_dispatched_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    work_.push_back(std::move(group));
  }
  work_cv_.notify_one();
}

bool Server::FlushWrites(Connection* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    ssize_t w =
        ::write(conn->fd, conn->outbuf.data() + conn->out_off, conn->outbuf.size() - conn->out_off);
    if (w > 0) {
      conn->out_off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;  // retry on POLLOUT
    if (w < 0 && errno == EINTR) continue;
    return false;  // write error
  }
  if (conn->out_off == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
    if (conn->close_requested && !conn->group_in_flight && conn->backlog.empty()) {
      // A poisoned connection that still owes its error frame is not done.
      if (!conn->decoder.poisoned() || conn->error_sent) return false;
    }
  }
  return true;
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
}

void Server::DrainCompletions() {
  std::deque<Completion> done;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done.swap(done_);
  }
  for (Completion& c : done) {
    inflight_requests_ -= std::min(inflight_requests_, c.request_count);
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died while the group ran
    Connection* conn = &it->second;
    conn->group_in_flight = false;
    conn->outbuf.insert(conn->outbuf.end(), c.bytes.begin(), c.bytes.end());
    DispatchReady(conn);
    if (!FlushWrites(conn)) CloseConnection(c.conn_id);
  }
}

void Server::WorkerLoop() {
  for (;;) {
    Group group;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [this] { return work_stop_ || !work_.empty(); });
      if (work_stop_ && work_.empty()) return;
      group = std::move(work_.front());
      work_.pop_front();
    }
    Completion completion;
    completion.conn_id = group.conn_id;
    completion.request_count = group.frames.size();
    service_.AnswerGroup(group.frames, &completion.bytes);
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(completion));
    }
    WakeNetwork();
  }
}

}  // namespace senn::rpc
