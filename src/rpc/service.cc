#include "src/rpc/service.h"

#include <optional>
#include <utility>

#include "src/obs/metrics.h"

namespace senn::rpc {

QueryService::QueryService(core::SpatialServer* server, ServiceOptions options,
                           obs::MetricsRegistry* metrics)
    : options_(options), metrics_(metrics), batch_(server, options.batch) {}

void QueryService::AnswerGroup(const std::vector<Frame>& frames, std::vector<uint8_t>* out,
                               obs::QueryTracer* tracer,
                               std::vector<size_t>* cluster_sizes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.groups;
  stats_.requests += frames.size();

  // Pass 1: triage. Valid kNN requests gather into one batch; everything
  // else pre-encodes its reply into the slot so pass 2 can emit strictly in
  // request order.
  struct Slot {
    std::optional<size_t> query_index;   // into `queries` when a valid request
    std::vector<uint8_t> ready_reply;    // pre-encoded otherwise
  };
  std::vector<Slot> slots(frames.size());
  std::vector<core::BatchQuery> queries;
  std::vector<uint64_t> query_request_ids;
  uint64_t errors = 0;
  uint64_t pings = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    const Frame& f = frames[i];
    const uint64_t id = f.header.request_id;
    Slot& slot = slots[i];
    switch (f.opcode()) {
      case Opcode::kPing:
        EncodePong(id, &slot.ready_reply);
        ++pings;
        break;
      case Opcode::kKnnRequest: {
        Result<KnnRequest> req = DecodeKnnRequest(f.payload);
        if (!req.ok()) {
          EncodeError(id, {ErrorCode::kMalformedFrame, req.status().message()},
                      &slot.ready_reply);
          ++errors;
          break;
        }
        Status valid = ValidateKnnRequest(*req);
        if (!valid.ok()) {
          EncodeError(id, {ErrorCode::kInvalidArgument, valid.message()}, &slot.ready_reply);
          ++errors;
          break;
        }
        slot.query_index = queries.size();
        queries.push_back({req->q, req->k, req->bounds, req->already_certified});
        query_request_ids.push_back(id);
        break;
      }
      default:
        EncodeError(id, {ErrorCode::kUnsupportedOpcode, "opcode is not a server request"},
                    &slot.ready_reply);
        ++errors;
        break;
    }
  }

  // One shared-traversal batch answers every valid request of the group.
  std::vector<core::ServerReply> replies;
  if (!queries.empty()) {
    replies = batch_.AnswerBatch(queries, tracer, metrics_, cluster_sizes);
  }

  // Pass 2: emit in request order.
  for (size_t i = 0; i < frames.size(); ++i) {
    const Slot& slot = slots[i];
    if (slot.query_index.has_value()) {
      EncodeKnnReply(query_request_ids[*slot.query_index], replies[*slot.query_index], out);
    } else {
      out->insert(out->end(), slot.ready_reply.begin(), slot.ready_reply.end());
    }
  }

  stats_.replies += queries.size() + pings;
  stats_.errors += errors;
  stats_.pings += pings;
  if (metrics_ != nullptr) {
    metrics_->Inc("rpc/groups");
    metrics_->Inc("rpc/requests", frames.size());
    if (errors > 0) metrics_->Inc("rpc/errors", errors);
    metrics_->Observe("rpc/group_size", static_cast<double>(frames.size()));
  }
}

core::BatchStats QueryService::batch_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_.stats();
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace senn::rpc
