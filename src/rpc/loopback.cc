#include "src/rpc/loopback.h"

#include <utility>

namespace senn::rpc {

Status LoopbackTransport::Send(const uint8_t* data, size_t n) {
  if (poisoned_) {
    return Status::FailedPrecondition("loopback connection closed after a protocol error");
  }
  Status st = decoder_.Feed(data, n);
  Frame frame;
  while (decoder_.Next(&frame)) pending_.push_back(std::move(frame));
  if (!st.ok()) {
    // Same behavior as the TCP server: frames decoded before the poison
    // point stay answerable and are answered FIRST; the framing error then
    // gets its own kError reply (request id 0 — no trustworthy id exists
    // past the corruption), and the connection is dead afterwards.
    framing_error_ = st.message();
    poisoned_ = true;
  }
  return Status::OK();
}

Status LoopbackTransport::Receive(std::vector<uint8_t>* out) {
  if (!pending_.empty()) {
    std::vector<Frame> group;
    group.swap(pending_);
    service_->AnswerGroup(group, &inbox_, tracer_, cluster_sizes_);
  }
  if (poisoned_ && !error_emitted_) {
    EncodeError(0, {ErrorCode::kMalformedFrame, framing_error_}, &inbox_);
    error_emitted_ = true;
  }
  if (inbox_.empty()) {
    return Status::FailedPrecondition("no request in flight on the loopback transport");
  }
  out->insert(out->end(), inbox_.begin(), inbox_.end());
  inbox_.clear();
  return Status::OK();
}

}  // namespace senn::rpc
