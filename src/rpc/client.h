// Client library of the kNN query server: blocking and pipelined APIs over
// any Transport.
//
// Blocking:
//   rpc::Client client(&transport);
//   Result<core::ServerReply> r = client.Knn({q, k, certified, bounds});
//
// Pipelined (the server batches a burst into shared traversals):
//   std::vector<uint64_t> ids;
//   for (const KnnRequest& req : burst) ids.push_back(client.SendKnn(req));
//   client.Flush();
//   for (uint64_t id : ids) Result<core::ServerReply> r = client.Wait(id);
//
// SendKnn only buffers; Flush pushes the encoded bytes to the transport in
// one Send (one syscall on TCP — the burst arrives together, which is what
// lets the server's network thread hand it to the engine as one group).
// Wait pumps the transport until the awaited request id's reply arrives,
// parking replies that belong to other in-flight ids; waiting in any order
// works, send order is cheapest (the server answers FIFO per connection).
//
// A kError reply surfaces as a non-OK Result whose Status mirrors the
// server's error code; transport and framing failures surface the same
// way. The client is single-threaded by design — one connection, one
// pipeline, like a simulator driving its server link.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/core/server.h"
#include "src/rpc/transport.h"
#include "src/rpc/wire.h"

namespace senn::rpc {

class Client {
 public:
  /// `transport` must outlive the client.
  explicit Client(Transport* transport, size_t max_payload = kDefaultMaxPayload)
      : transport_(transport), decoder_(max_payload) {}

  /// Blocking round trip: SendKnn + Flush + Wait.
  Result<core::ServerReply> Knn(const KnnRequest& request);

  /// Pipelined half-calls ----------------------------------------------------
  /// Encodes the request into the send buffer; returns its request id.
  uint64_t SendKnn(const KnnRequest& request);
  /// Pushes all buffered request bytes to the transport.
  Status Flush();
  /// Blocks until the reply for `request_id` arrives (flushing first).
  Result<core::ServerReply> Wait(uint64_t request_id);

  /// Liveness no-op round trip.
  Status Ping();

  /// Requests sent (or buffered) and not yet resolved by Wait.
  size_t inflight() const { return inflight_; }
  /// Request ids of every reply frame in arrival order, across the
  /// client's lifetime — the pipelined tests assert per-connection FIFO
  /// against this log.
  const std::vector<uint64_t>& reply_log() const { return reply_log_; }

 private:
  /// Reads transport bytes and files decoded reply frames until at least
  /// one new frame arrived.
  Status Pump();
  void FileFrame(Frame frame);

  Transport* transport_;
  FrameDecoder decoder_;
  std::vector<uint8_t> outbox_;
  uint64_t next_id_ = 1;
  size_t inflight_ = 0;
  /// Completed kNN calls not yet claimed by Wait, keyed by request id.
  std::map<uint64_t, Result<core::ServerReply>> done_;
  /// Pong ids not yet claimed by Ping.
  std::map<uint64_t, bool> pongs_;
  std::vector<uint64_t> reply_log_;
};

}  // namespace senn::rpc
