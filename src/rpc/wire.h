// Binary wire protocol of the standalone kNN query server (src/rpc/).
//
// Layout rules, in the tarantool-iproto tradition of compact fixed-header
// framing:
//   * everything is little-endian; doubles travel as the IEEE-754 bit
//     pattern of the producing machine (std::bit_cast through uint64_t), so
//     a decoded reply is BITWISE identical to the encoded one — the
//     loopback-determinism contract of the simulator depends on this;
//   * every message is one frame: a fixed 20-byte header (magic, version,
//     opcode, reserved flags, request id, payload length) followed by
//     `payload_len` payload bytes;
//   * requests and replies are correlated by the client-chosen `request_id`
//     echoed verbatim in the reply header. The server answers a
//     connection's requests in arrival order (per-connection FIFO), so ids
//     are for sanity checking and pipelined bookkeeping, not reordering.
//
// Messages:
//   kKnnRequest  — the arguments of core::SpatialServer::QueryKnn: query
//                  point, k, PruneBounds (presence-flagged lower/upper plus
//                  the lower_id_cut), already_certified.
//   kKnnReply    — core::ServerReply: the EINN/INN access counters (miss
//                  and shared/private-miss accounting included) and the
//                  ranked neighbor list.
//   kError       — a well-formed error reply: machine code + message. Sent
//                  instead of a kKnnReply for invalid requests, instead of
//                  crashing or answering silently-empty.
//   kPing/kPong  — liveness no-ops (connection smoke tests).
//
// The `FrameDecoder` is the single framing parser used by the server, the
// client, and the loopback transport: incremental (robust to arbitrary read
// fragmentation), and fail-stop on malformed input — a bad magic, version,
// reserved flags, or oversized length poisons the stream with a descriptive
// Status instead of resynchronizing (after garbage there is no trustworthy
// frame boundary; the connection must be torn down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/server.h"
#include "src/geom/vec2.h"
#include "src/rtree/knn.h"

namespace senn::rpc {

/// "SNNQ" when read as raw little-endian bytes on the wire.
inline constexpr uint32_t kMagic = 0x514E4E53u;
inline constexpr uint8_t kProtocolVersion = 1;
/// Fixed frame header size in bytes.
inline constexpr size_t kHeaderSize = 20;
/// Default cap on a single frame's payload. Replies carry at most the
/// server_request_k neighbors (32 bytes each), so 1 MiB is generous;
/// anything larger is a corrupt or hostile length field.
inline constexpr size_t kDefaultMaxPayload = 1u << 20;

enum class Opcode : uint8_t {
  kKnnRequest = 1,
  kKnnReply = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
};

/// Machine-readable category of a kError reply.
enum class ErrorCode : uint32_t {
  /// Request decoded but failed semantic validation (k <= 0, non-finite
  /// coordinates, inconsistent PruneBounds, ...).
  kInvalidArgument = 1,
  /// Payload (or frame) bytes could not be decoded at all.
  kMalformedFrame = 2,
  /// Frame was well-formed but its opcode is not one the server answers.
  kUnsupportedOpcode = 3,
  /// Admission control rejected the request (load shedding).
  kOverloaded = 4,
  /// Unexpected server-side failure.
  kInternal = 5,
};

const char* ErrorCodeName(ErrorCode code);

struct FrameHeader {
  uint32_t magic = kMagic;
  uint8_t version = kProtocolVersion;
  uint8_t opcode = 0;
  /// Reserved; must be zero on the wire (a nonzero value is malformed).
  uint16_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// One complete decoded frame.
struct Frame {
  FrameHeader header;
  std::vector<uint8_t> payload;

  Opcode opcode() const { return static_cast<Opcode>(header.opcode); }
};

/// The arguments of one SpatialServer::QueryKnn call, as shipped by a
/// client (mirrors core::BatchQuery).
struct KnnRequest {
  geom::Vec2 q;
  int32_t k = 1;
  int32_t already_certified = 0;
  rtree::PruneBounds bounds;
};

/// Payload of a kError reply.
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// --- encoding --------------------------------------------------------------

/// Appends one complete frame (header + payload already encoded).
void EncodeFrame(Opcode opcode, uint64_t request_id, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out);

void EncodeKnnRequest(uint64_t request_id, const KnnRequest& request,
                      std::vector<uint8_t>* out);
void EncodeKnnReply(uint64_t request_id, const core::ServerReply& reply,
                    std::vector<uint8_t>* out);
void EncodeError(uint64_t request_id, const ErrorReply& error, std::vector<uint8_t>* out);
void EncodePing(uint64_t request_id, std::vector<uint8_t>* out);
void EncodePong(uint64_t request_id, std::vector<uint8_t>* out);

// --- decoding --------------------------------------------------------------

/// Payload decoders: reject truncated payloads AND trailing garbage (a
/// payload must be consumed exactly), so a length-field mismatch can never
/// smuggle bytes across message boundaries.
Result<KnnRequest> DecodeKnnRequest(const std::vector<uint8_t>& payload);
Result<core::ServerReply> DecodeKnnReply(const std::vector<uint8_t>& payload);
Result<ErrorReply> DecodeError(const std::vector<uint8_t>& payload);

/// Semantic validation applied at the protocol boundary, before a request
/// may reach the query engine: finite coordinates, k > 0,
/// 0 <= already_certified <= k, finite non-negative bounds with
/// lower <= upper. Returns InvalidArgument describing the first violation.
Status ValidateKnnRequest(const KnnRequest& request);

/// Incremental frame parser. Feed() accepts arbitrary byte fragments (a
/// frame may arrive one byte at a time, or many frames in one read);
/// complete frames queue up for Next(). The first malformed header or
/// oversized length returns a non-OK Status and poisons the decoder: every
/// later Feed() fails with the same status, and frames decoded BEFORE the
/// poison point remain retrievable (the server answers what was valid, then
/// closes).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  Status Feed(const uint8_t* data, size_t n);
  /// Pops the next complete frame; false when none is pending.
  bool Next(Frame* out);
  /// Frames decoded and not yet popped.
  size_t pending() const { return frames_.size(); }
  bool poisoned() const { return !error_.ok(); }
  const Status& error() const { return error_; }
  /// Bytes buffered but not yet forming a complete frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  std::deque<Frame> frames_;
  Status error_;
};

}  // namespace senn::rpc
