// TCP client transport: a non-blocking IPv4 socket with deadline-bounded
// Send/Receive, connecting an rpc::Client to a senn_served process (or an
// in-process rpc::Server).
//
// Timeouts here are WALL-CLOCK by necessity — a remote peer's pace is not
// simulated time — and are the one place the rpc subsystem touches a real
// clock. They bound total elapsed time across partial reads/writes (a peer
// trickling one byte per poll cannot extend a call forever). Deterministic
// runs use the loopback transport, which has no clock at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/rpc/transport.h"

namespace senn::rpc {

struct TcpOptions {
  /// Bound on Connect().
  int connect_timeout_ms = 5000;
  /// Bound on one Receive() call (total, across partial reads).
  int receive_timeout_ms = 10000;
  /// Bound on one Send() call (total, across partial writes).
  int send_timeout_ms = 10000;
};

class TcpClientTransport : public Transport {
 public:
  /// Connects to `host:port` (numeric IPv4 address or "localhost").
  static Result<std::unique_ptr<TcpClientTransport>> Connect(const std::string& host,
                                                             uint16_t port,
                                                             TcpOptions options = {});
  ~TcpClientTransport() override;

  TcpClientTransport(const TcpClientTransport&) = delete;
  TcpClientTransport& operator=(const TcpClientTransport&) = delete;

  Status Send(const uint8_t* data, size_t n) override;
  /// Appends whatever arrived (>= 1 byte) within the receive timeout;
  /// OutOfRange on timeout, FailedPrecondition when the peer closed.
  Status Receive(std::vector<uint8_t>* out) override;

  int fd() const { return fd_; }

 private:
  explicit TcpClientTransport(int fd, TcpOptions options) : fd_(fd), options_(options) {}

  int fd_ = -1;
  TcpOptions options_;
};

}  // namespace senn::rpc
