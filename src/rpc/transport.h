// Client-side byte transport abstraction of the rpc subsystem.
//
// A Transport carries opaque frame bytes between an rpc::Client and a
// server: TcpClientTransport (src/rpc/tcp.h) over a real socket, and
// LoopbackTransport (src/rpc/loopback.h) through an in-process
// QueryService with deterministic ordering. The client encodes and frames
// on one side, the server decodes and dispatches on the other — both
// transports run the exact same encode -> frame -> decode -> dispatch
// path, which is what lets the simulator swap them without changing a
// byte of output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace senn::rpc {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `n` bytes toward the server. The bytes need not align with
  /// frame boundaries — framing is the decoder's job on the far side.
  virtual Status Send(const uint8_t* data, size_t n) = 0;

  /// Produces server-to-client bytes: appends at least one byte to `*out`
  /// on success. A TCP transport blocks (bounded by its receive timeout);
  /// the loopback transport synchronously dispatches what was sent and
  /// fails fast when nothing is in flight.
  virtual Status Receive(std::vector<uint8_t>* out) = 0;
};

}  // namespace senn::rpc
