// The standalone kNN query server runtime: one network thread, a worker
// pool, pipelined framing, batched dispatch.
//
// The thread split follows tarantool's iproto (src/box/iproto.cc): a
// single NETWORK thread owns every socket — it accepts connections, reads
// bytes into each connection's FrameDecoder, and writes reply bytes back —
// while WORKER threads own the query engine work. The two meet at a
// dispatch queue of request GROUPS:
//
//   * while a connection has a group in flight, newly decoded requests
//     accumulate on the connection (this is where pipelining pays: the
//     backlog a busy engine creates is exactly the burst the next group
//     batches);
//   * when the connection is idle, its whole backlog becomes one group,
//     handed to a worker that answers it through QueryService::AnswerGroup
//     — one core::BatchServer call, co-located queries sharing EINN
//     traversals;
//   * the worker pushes the encoded reply bytes to a completion queue and
//     wakes the network thread through a pipe; the network thread writes
//     them and dispatches the connection's next group.
//
// One group in flight per connection gives per-connection FIFO replies for
// free and keeps a slow connection from flooding the queue; admission
// control sits at dispatch: when the server-wide in-flight request count
// would exceed `max_inflight_requests`, the burst is load-shed with
// kOverloaded error replies (counted as rpc/shed in the metrics registry)
// instead of queueing without bound.
//
// Framing errors are fail-stop per connection: the decoded-so-far requests
// are still answered, a kError frame describes the corruption, and the
// connection closes once its replies are flushed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/core/server.h"
#include "src/rpc/service.h"
#include "src/rpc/wire.h"

namespace senn::obs {
class MetricsRegistry;
}

namespace senn::rpc {

struct ServerOptions {
  /// Bind address; the default serves loopback only (tests, local bench).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port() after Start()).
  uint16_t port = 0;
  int worker_threads = 2;
  /// Dispatch/batching knobs (QueryService).
  ServiceOptions service;
  /// Frame size cap applied per connection.
  size_t max_payload = kDefaultMaxPayload;
  /// Admission control: server-wide in-flight request cap; a dispatch that
  /// would exceed it is load-shed with kOverloaded replies. 0 disables.
  size_t max_inflight_requests = 4096;
  /// Listen backlog.
  int listen_backlog = 64;
};

/// Snapshot of the server-level counters (the per-connection and engine
/// counters live in QueryService / MetricsRegistry).
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t groups_dispatched = 0;
  uint64_t requests_shed = 0;
  uint64_t framing_errors = 0;
};

class Server {
 public:
  /// `spatial` must outlive the server. `metrics`, when given, receives
  /// rpc/ + batch/ counters; reads are only consistent while the server is
  /// stopped (updates happen under internal locks, but a concurrent reader
  /// would race).
  Server(core::SpatialServer* spatial, ServerOptions options,
         obs::MetricsRegistry* metrics = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the network + worker threads.
  Status Start();
  /// Stops the threads and closes every socket. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  QueryService& service() { return service_; }
  ServerCounters counters() const;

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    FrameDecoder decoder;
    /// Decoded requests awaiting dispatch.
    std::vector<Frame> backlog;
    /// Reply bytes awaiting the socket.
    std::vector<uint8_t> outbuf;
    size_t out_off = 0;
    bool group_in_flight = false;
    /// Close once replies are flushed and nothing is in flight.
    bool close_requested = false;
    /// The kError frame describing a framing error has been queued.
    bool error_sent = false;

    explicit Connection(size_t max_payload) : decoder(max_payload) {}
  };
  struct Group {
    uint64_t conn_id = 0;
    std::vector<Frame> frames;
  };
  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> bytes;
    size_t request_count = 0;
  };

  void NetworkLoop();
  void WorkerLoop();
  void WakeNetwork();
  void AcceptReady();
  /// Reads everything available; returns false when the connection died.
  bool HandleReadable(Connection* conn);
  void DispatchReady(Connection* conn);
  /// Writes as much of outbuf as the socket takes; returns false when the
  /// connection should be closed (write error, or drained after a
  /// requested close).
  bool FlushWrites(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();

  ServerOptions options_;
  QueryService service_;
  /// Updates made outside the service lock (the shed counter) go through
  /// metrics_mu_; everything else reaches the registry via service_, under
  /// its lock. The pointer itself is set once in the constructor.
  obs::MetricsRegistry* metrics_ SENN_PT_GUARDED_BY(metrics_mu_);
  std::mutex metrics_mu_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // [0] read end (network thread), [1] writers
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread network_thread_;
  std::vector<std::thread> workers_;

  // Dispatch queue (network thread -> workers). Lock order (matches
  // declaration order, enforced by senn_lint L9): a thread holding
  // work_mu_ may take done_mu_, never the reverse — and neither is ever
  // held across socket I/O or a page fetch.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<Group> work_ SENN_GUARDED_BY(work_mu_);
  bool work_stop_ SENN_GUARDED_BY(work_mu_) = false;

  // Completion queue (workers -> network thread).
  std::mutex done_mu_;
  std::deque<Completion> done_ SENN_GUARDED_BY(done_mu_);

  // Network-thread-private state.
  std::map<uint64_t, Connection> conns_;
  uint64_t next_conn_id_ = 1;
  size_t inflight_requests_ = 0;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> groups_dispatched_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> framing_errors_{0};
};

}  // namespace senn::rpc
