// Transport-independent dispatch engine of the kNN query server.
//
// A `QueryService` is the seam every transport feeds: the TCP server's
// worker threads and the deterministic loopback transport both hand it one
// *dispatch group* at a time — the decoded frames a connection had pipelined
// while the engine was busy — and receive the encoded reply bytes, in
// request order. One group is answered by ONE core::BatchServer call, so
// co-located queries inside a pipelined burst share EINN traversals exactly
// like the simulator's batched drain (PR 6), single-charge miss accounting
// included.
//
// Protocol-boundary hardening happens here, before anything reaches the
// engine: undecodable payloads, unsupported opcodes, and semantically
// invalid requests (k <= 0, non-finite coordinates, inconsistent
// PruneBounds) each produce a well-formed kError reply in the request's
// slot — never a crash, never a silent empty result.
//
// Thread safety: AnswerGroup serializes on an internal mutex (the
// SpatialServer/BatchServer engine and the buffer pool underneath are
// single-threaded by contract), so any number of worker threads may call it
// concurrently. Reply ENCODING for a group also runs under the lock; it is
// microseconds against the traversal's page work, and keeping it inside
// makes the metrics registry updates race-free too.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/core/batch_server.h"
#include "src/core/server.h"
#include "src/rpc/wire.h"

namespace senn::obs {
class MetricsRegistry;
class QueryTracer;
}  // namespace senn::obs

namespace senn::rpc {

struct ServiceOptions {
  /// Clustering knobs of the per-group shared traversals. `max_group = 1`
  /// answers every request with a verbatim sequential QueryKnn call — the
  /// byte-identical default the simulator's loopback mode relies on.
  core::BatchOptions batch;
};

/// Cumulative dispatch counters (monotone; snapshot under the same lock as
/// AnswerGroup, so the numbers are mutually consistent).
struct ServiceStats {
  uint64_t groups = 0;
  uint64_t requests = 0;
  uint64_t replies = 0;
  uint64_t errors = 0;
  uint64_t pings = 0;
};

class QueryService {
 public:
  /// `server` must outlive the service. `metrics`, when given, receives the
  /// "rpc/" dispatch counters and the "batch/" engine counters; it is
  /// updated only under the service lock, so a registry may be shared with
  /// other single-threaded readers only after the service is idle.
  QueryService(core::SpatialServer* server, ServiceOptions options,
               obs::MetricsRegistry* metrics = nullptr);

  /// Answers one dispatch group: `frames` in arrival order, encoded reply
  /// frames appended to `*out` in the SAME order (per-connection FIFO is
  /// the transport contract, and it starts here). All decodable, valid kNN
  /// requests of the group are answered by one BatchServer::AnswerBatch
  /// call; everything else gets its kError/kPong reply in place.
  ///
  /// `tracer` and `cluster_sizes` are in-process observability side-bands
  /// (the simulator's loopback mode threads its span tracer and the batch
  /// cluster-size histogram through them); remote transports pass null.
  void AnswerGroup(const std::vector<Frame>& frames, std::vector<uint8_t>* out,
                   obs::QueryTracer* tracer = nullptr,
                   std::vector<size_t>* cluster_sizes = nullptr) SENN_EXCLUDES(mu_);

  /// Engine batch counters (shared traversals, singleton delegations).
  core::BatchStats batch_stats() const SENN_EXCLUDES(mu_);
  ServiceStats stats() const SENN_EXCLUDES(mu_);
  const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  obs::MetricsRegistry* metrics_ SENN_PT_GUARDED_BY(mu_);
  /// mu_ is the serialization boundary of the ENTIRE engine below: the
  /// BatchServer, the SpatialServer it wraps, and the storage::BufferPool
  /// underneath are single-threaded by contract and carry no locks of
  /// their own — every page fetch the engine performs happens inside this
  /// critical section, which is why senn_lint L9 need not look below rpc/.
  mutable std::mutex mu_;
  core::BatchServer batch_ SENN_GUARDED_BY(mu_);
  ServiceStats stats_ SENN_GUARDED_BY(mu_);
};

}  // namespace senn::rpc
