#include "src/rpc/wire.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace senn::rpc {
namespace {

// Little-endian primitive writers. Appending through shifts (not memcpy of
// host memory) keeps the wire format byte-stable on any host endianness.
void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }
void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}
void PutI32(int32_t v, std::vector<uint8_t>* out) { PutU32(static_cast<uint32_t>(v), out); }
void PutI64(int64_t v, std::vector<uint8_t>* out) { PutU64(static_cast<uint64_t>(v), out); }
// IEEE-754 bit pattern: decoding reproduces the exact double, which is what
// makes wire-transported replies bitwise-identical to in-process ones.
void PutF64(double v, std::vector<uint8_t>* out) { PutU64(std::bit_cast<uint64_t>(v), out); }

// Bounds-checked little-endian reader over one payload.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<uint8_t>& payload) : data_(payload) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    pos_ += 4;
    *v = r;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    pos_ += 8;
    *v = r;
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }
  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

void PutCounter(const rtree::AccessCounter& c, std::vector<uint8_t>* out) {
  PutU64(c.index_nodes, out);
  PutU64(c.leaf_nodes, out);
  PutU64(c.index_misses, out);
  PutU64(c.leaf_misses, out);
  PutU64(c.shared_misses, out);
  PutU64(c.private_misses, out);
}

bool ReadCounter(PayloadReader* r, rtree::AccessCounter* c) {
  return r->ReadU64(&c->index_nodes) && r->ReadU64(&c->leaf_nodes) &&
         r->ReadU64(&c->index_misses) && r->ReadU64(&c->leaf_misses) &&
         r->ReadU64(&c->shared_misses) && r->ReadU64(&c->private_misses);
}

// PruneBounds presence flags.
constexpr uint8_t kHasLower = 0x1;
constexpr uint8_t kHasUpper = 0x2;
constexpr uint8_t kKnownBoundsFlags = kHasLower | kHasUpper;

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what + " payload");
}
Status Trailing(const char* what) {
  return Status::InvalidArgument(std::string("trailing bytes after ") + what + " payload");
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kMalformedFrame:
      return "malformed-frame";
    case ErrorCode::kUnsupportedOpcode:
      return "unsupported-opcode";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

void EncodeFrame(Opcode opcode, uint64_t request_id, const std::vector<uint8_t>& payload,
                 std::vector<uint8_t>* out) {
  out->reserve(out->size() + kHeaderSize + payload.size());
  PutU32(kMagic, out);
  PutU8(kProtocolVersion, out);
  PutU8(static_cast<uint8_t>(opcode), out);
  PutU16(0, out);  // reserved flags
  PutU64(request_id, out);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

void EncodeKnnRequest(uint64_t request_id, const KnnRequest& request,
                      std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutF64(request.q.x, &payload);
  PutF64(request.q.y, &payload);
  PutI32(request.k, &payload);
  PutI32(request.already_certified, &payload);
  uint8_t flags = 0;
  if (request.bounds.lower.has_value()) flags |= kHasLower;
  if (request.bounds.upper.has_value()) flags |= kHasUpper;
  PutU8(flags, &payload);
  if (request.bounds.lower.has_value()) PutF64(*request.bounds.lower, &payload);
  if (request.bounds.upper.has_value()) PutF64(*request.bounds.upper, &payload);
  PutI64(request.bounds.lower_id_cut, &payload);
  EncodeFrame(Opcode::kKnnRequest, request_id, payload, out);
}

void EncodeKnnReply(uint64_t request_id, const core::ServerReply& reply,
                    std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutCounter(reply.einn_accesses, &payload);
  PutCounter(reply.inn_accesses, &payload);
  PutU32(static_cast<uint32_t>(reply.neighbors.size()), &payload);
  for (const core::RankedPoi& n : reply.neighbors) {
    PutI64(n.id, &payload);
    PutF64(n.position.x, &payload);
    PutF64(n.position.y, &payload);
    PutF64(n.distance, &payload);
  }
  EncodeFrame(Opcode::kKnnReply, request_id, payload, out);
}

void EncodeError(uint64_t request_id, const ErrorReply& error, std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  PutU32(static_cast<uint32_t>(error.code), &payload);
  PutU32(static_cast<uint32_t>(error.message.size()), &payload);
  payload.insert(payload.end(), error.message.begin(), error.message.end());
  EncodeFrame(Opcode::kError, request_id, payload, out);
}

void EncodePing(uint64_t request_id, std::vector<uint8_t>* out) {
  EncodeFrame(Opcode::kPing, request_id, {}, out);
}

void EncodePong(uint64_t request_id, std::vector<uint8_t>* out) {
  EncodeFrame(Opcode::kPong, request_id, {}, out);
}

Result<KnnRequest> DecodeKnnRequest(const std::vector<uint8_t>& payload) {
  PayloadReader r(payload);
  KnnRequest req;
  uint8_t flags = 0;
  if (!r.ReadF64(&req.q.x) || !r.ReadF64(&req.q.y) || !r.ReadI32(&req.k) ||
      !r.ReadI32(&req.already_certified) || !r.ReadU8(&flags)) {
    return Truncated("kKnnRequest");
  }
  if ((flags & ~kKnownBoundsFlags) != 0) {
    return Status::InvalidArgument("unknown PruneBounds presence flags");
  }
  if ((flags & kHasLower) != 0) {
    double lower = 0.0;
    if (!r.ReadF64(&lower)) return Truncated("kKnnRequest");
    req.bounds.lower = lower;
  }
  if ((flags & kHasUpper) != 0) {
    double upper = 0.0;
    if (!r.ReadF64(&upper)) return Truncated("kKnnRequest");
    req.bounds.upper = upper;
  }
  if (!r.ReadI64(&req.bounds.lower_id_cut)) return Truncated("kKnnRequest");
  if (r.remaining() != 0) return Trailing("kKnnRequest");
  return req;
}

Result<core::ServerReply> DecodeKnnReply(const std::vector<uint8_t>& payload) {
  PayloadReader r(payload);
  core::ServerReply reply;
  if (!ReadCounter(&r, &reply.einn_accesses) || !ReadCounter(&r, &reply.inn_accesses)) {
    return Truncated("kKnnReply");
  }
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return Truncated("kKnnReply");
  // 32 bytes per neighbor: a count larger than the remaining payload is a
  // corrupt length, not a reason to allocate count entries up front.
  if (static_cast<uint64_t>(count) * 32 != r.remaining()) {
    return Status::InvalidArgument("kKnnReply neighbor count disagrees with payload size");
  }
  reply.neighbors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    core::RankedPoi poi;
    if (!r.ReadI64(&poi.id) || !r.ReadF64(&poi.position.x) || !r.ReadF64(&poi.position.y) ||
        !r.ReadF64(&poi.distance)) {
      return Truncated("kKnnReply");
    }
    reply.neighbors.push_back(poi);
  }
  if (r.remaining() != 0) return Trailing("kKnnReply");
  return reply;
}

Result<ErrorReply> DecodeError(const std::vector<uint8_t>& payload) {
  PayloadReader r(payload);
  uint32_t code = 0;
  uint32_t len = 0;
  if (!r.ReadU32(&code) || !r.ReadU32(&len)) return Truncated("kError");
  ErrorReply err;
  err.code = static_cast<ErrorCode>(code);
  if (!r.ReadBytes(len, &err.message)) return Truncated("kError");
  if (r.remaining() != 0) return Trailing("kError");
  return err;
}

Status ValidateKnnRequest(const KnnRequest& request) {
  if (!std::isfinite(request.q.x) || !std::isfinite(request.q.y)) {
    return Status::InvalidArgument("query coordinates must be finite");
  }
  if (request.k <= 0) return Status::InvalidArgument("k must be positive");
  if (request.already_certified < 0 || request.already_certified > request.k) {
    return Status::InvalidArgument("already_certified must lie in [0, k]");
  }
  const rtree::PruneBounds& b = request.bounds;
  if (b.lower.has_value() && (!std::isfinite(*b.lower) || *b.lower < 0.0)) {
    return Status::InvalidArgument("bounds.lower must be finite and non-negative");
  }
  if (b.upper.has_value() && (!std::isfinite(*b.upper) || *b.upper < 0.0)) {
    return Status::InvalidArgument("bounds.upper must be finite and non-negative");
  }
  if (b.lower.has_value() && b.upper.has_value() && *b.lower > *b.upper) {
    return Status::InvalidArgument("inconsistent PruneBounds: lower exceeds upper");
  }
  return Status::OK();
}

Status FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), data, data + n);
  for (;;) {
    const size_t avail = buffer_.size() - consumed_;
    if (avail < kHeaderSize) break;
    const uint8_t* p = buffer_.data() + consumed_;
    FrameHeader h;
    h.magic = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
              static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
    h.version = p[4];
    h.opcode = p[5];
    h.flags = static_cast<uint16_t>(static_cast<uint16_t>(p[6]) |
                                    static_cast<uint16_t>(p[7]) << 8);
    h.request_id = 0;
    for (int i = 0; i < 8; ++i) {
      h.request_id |= static_cast<uint64_t>(p[8 + i]) << (8 * i);
    }
    h.payload_len = static_cast<uint32_t>(p[16]) | static_cast<uint32_t>(p[17]) << 8 |
                    static_cast<uint32_t>(p[18]) << 16 | static_cast<uint32_t>(p[19]) << 24;
    if (h.magic != kMagic) {
      error_ = Status::InvalidArgument("bad frame magic");
      return error_;
    }
    if (h.version != kProtocolVersion) {
      error_ = Status::InvalidArgument("unsupported protocol version");
      return error_;
    }
    if (h.flags != 0) {
      error_ = Status::InvalidArgument("nonzero reserved frame flags");
      return error_;
    }
    if (h.payload_len > max_payload_) {
      error_ = Status::OutOfRange("frame payload exceeds the size limit");
      return error_;
    }
    if (avail < kHeaderSize + h.payload_len) break;  // wait for the rest
    Frame frame;
    frame.header = h;
    frame.payload.assign(p + kHeaderSize, p + kHeaderSize + h.payload_len);
    frames_.push_back(std::move(frame));
    consumed_ += kHeaderSize + h.payload_len;
  }
  // Compact: drop fully-consumed prefix so long-lived connections do not
  // grow the buffer without bound.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Status::OK();
}

bool FrameDecoder::Next(Frame* out) {
  if (frames_.empty()) return false;
  *out = std::move(frames_.front());
  frames_.pop_front();
  return true;
}

}  // namespace senn::rpc
