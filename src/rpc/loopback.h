// Deterministic in-process transport: the tier-1 contract of the rpc
// subsystem.
//
// LoopbackTransport connects an rpc::Client to a QueryService without a
// socket, but WITH the full wire path: Send() runs the server-side frame
// decoder over the exact bytes the client encoded, and the first Receive()
// after a burst dispatches everything decoded so far as ONE group through
// QueryService::AnswerGroup — precisely the accumulate-while-busy batching
// discipline of the TCP server's network thread, made synchronous and
// deterministic. Replies come back as encoded bytes the client's own
// decoder parses.
//
// Consequences the simulator relies on (--server-transport loopback):
//   * a blocking Client::Knn call is a group of one — a verbatim
//     sequential SpatialServer::QueryKnn, bitwise reply and accounting;
//   * a pipelined burst (SendKnn x n, then Wait) is a group of n — one
//     BatchServer::AnswerBatch over the n requests in send order, exactly
//     the simulator's batched drain;
//   * two identical byte streams produce identical reply bytes; nothing
//     depends on threads, timing, or the wall clock.
//
// Malformed input mirrors the TCP server: the offending Send still returns
// OK (the bytes were accepted), a kError reply frame is queued for the
// client, and the transport poisons — later Sends fail like writes on a
// closed connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/rpc/service.h"
#include "src/rpc/transport.h"
#include "src/rpc/wire.h"

namespace senn::obs {
class QueryTracer;
}

namespace senn::rpc {

class LoopbackTransport : public Transport {
 public:
  /// `service` must outlive the transport.
  explicit LoopbackTransport(QueryService* service, size_t max_payload = kDefaultMaxPayload)
      : service_(service), decoder_(max_payload) {}

  Status Send(const uint8_t* data, size_t n) override;
  Status Receive(std::vector<uint8_t>* out) override;

  /// In-process observability side-band for the NEXT dispatches: the
  /// simulator threads its span tracer (buffer_fetch / server_batch_einn
  /// spans keep working over loopback) and the cluster-size sink through
  /// here. Sticky until changed; pass nulls to detach. Remote transports
  /// have no equivalent — this is exactly the observability a process
  /// boundary would cost.
  void SetDispatchObservers(obs::QueryTracer* tracer, std::vector<size_t>* cluster_sizes) {
    tracer_ = tracer;
    cluster_sizes_ = cluster_sizes;
  }

  /// Requests decoded and awaiting the next Receive()'s dispatch.
  size_t pending_requests() const { return pending_.size(); }

 private:
  QueryService* service_;
  FrameDecoder decoder_;
  std::vector<Frame> pending_;
  std::vector<uint8_t> inbox_;
  bool poisoned_ = false;
  /// Framing-error description awaiting its kError reply.
  std::string framing_error_;
  bool error_emitted_ = false;
  obs::QueryTracer* tracer_ = nullptr;
  std::vector<size_t>* cluster_sizes_ = nullptr;
};

}  // namespace senn::rpc
