#include "src/rpc/tcp.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace senn::rpc {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

// Monotonic milliseconds for socket deadlines. Sockets are the one rpc
// component whose progress is paced by a real remote peer, so their
// timeouts must be real time; nothing derived from this value ever feeds
// an algorithm or a report.
int64_t MonotonicNowMs() {
  // senn-lint: allow(L3-wallclock): socket I/O deadlines are inherently
  // wall-clock — a remote peer's pace is not simulated time. Deterministic
  // runs use the loopback transport, which never reaches this file.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch())
      .count();
}

// Waits for `events` on fd until the deadline; returns 1 ready, 0 timeout,
// -1 error.
int PollUntil(int fd, short events, int64_t deadline_ms) {
  int64_t remaining = deadline_ms - MonotonicNowMs();
  if (remaining < 0) remaining = 0;
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, static_cast<int>(std::min<int64_t>(remaining, 1 << 30)));
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
    remaining = deadline_ms - MonotonicNowMs();
    if (remaining < 0) remaining = 0;
  }
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<TcpClientTransport>> TcpClientTransport::Connect(
    const std::string& host, uint16_t port, TcpOptions options) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      Status err = Errno("connect");
      ::close(fd);
      return err;
    }
    const int64_t deadline = MonotonicNowMs() + options.connect_timeout_ms;
    int rc = PollUntil(fd, POLLOUT, deadline);
    if (rc <= 0) {
      ::close(fd);
      return rc == 0 ? Status::OutOfRange("connect timed out") : Errno("poll(connect)");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 || soerr != 0) {
      ::close(fd);
      errno = soerr != 0 ? soerr : errno;
      return Errno("connect");
    }
  }
  return std::unique_ptr<TcpClientTransport>(new TcpClientTransport(fd, options));
}

TcpClientTransport::~TcpClientTransport() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpClientTransport::Send(const uint8_t* data, size_t n) {
  const int64_t deadline = MonotonicNowMs() + options_.send_timeout_ms;
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd_, data + off, n - off);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Errno("write");
    }
    int rc = PollUntil(fd_, POLLOUT, deadline);
    if (rc == 0) return Status::OutOfRange("send timed out");
    if (rc < 0) return Errno("poll(send)");
  }
  return Status::OK();
}

Status TcpClientTransport::Receive(std::vector<uint8_t>* out) {
  const int64_t deadline = MonotonicNowMs() + options_.receive_timeout_ms;
  uint8_t buf[65536];
  for (;;) {
    ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      out->insert(out->end(), buf, buf + r);
      return Status::OK();
    }
    if (r == 0) return Status::FailedPrecondition("connection closed by peer");
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return Errno("read");
    int rc = PollUntil(fd_, POLLIN, deadline);
    if (rc == 0) return Status::OutOfRange("receive timed out");
    if (rc < 0) return Errno("poll(receive)");
  }
}

}  // namespace senn::rpc
