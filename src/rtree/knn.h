// Nearest-neighbor search algorithms over the R*-tree.
//
//  * DepthFirstKnn    — branch-and-bound kNN (Roussopoulos, Kelley, Vincent,
//                       SIGMOD 1995); the single-step baseline.
//  * BestFirstNnIterator — the optimal incremental NN algorithm (INN) of
//                       Hjaltason & Samet (TODS 1999): a priority queue of
//                       nodes/objects ordered by MINDIST, reporting neighbors
//                       in ascending distance without a-priori k.
//  * EINN             — the paper's extension (Section 3.3): the best-first
//                       search additionally computes MAXDIST and applies two
//                       pruning rules derived from the client's candidate
//                       heap H:
//                         downward pruning: drop any MBR with
//                           MAXDIST(Q, M) < lower_bound  (M lies fully inside
//                           the already-certain disk C_r, so every object in
//                           it is already known to the client);
//                         upward pruning: drop any MBR with
//                           MINDIST(Q, M) > upper_bound  (the client already
//                           holds k candidates within upper_bound).
//                       Objects at distance <= lower_bound are also skipped:
//                       the client certified them locally.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "src/geom/vec2.h"
#include "src/rtree/rstar_tree.h"

namespace senn::rtree {

/// A search hit: object plus its Euclidean distance to the query point.
struct Neighbor {
  ObjectEntry object;
  double distance = 0.0;
};

/// When a node access is charged during best-first search.
///
///  * kOnExpand  — a node is charged when it is popped and its slots are
///    read (the I/O-minimal accounting; best-first reads exactly the nodes
///    it must).
///  * kOnEnqueue — a node is charged when it is placed on the priority
///    queue (the accounting style whose magnitudes and EINN-vs-INN savings
///    match the paper's Figure 17: nodes that are fetched into the queue
///    but never expanded still count, so the upper bound's enqueue-time
///    pruning shows up as saved pages).
enum class AccessCountMode {
  kOnExpand = 0,
  kOnEnqueue = 1,
};

/// Bounds shipped from a mobile host's candidate heap H to the server
/// (Section 3.3 of the paper). Either bound may be absent, depending on the
/// heap state (States 1-6).
struct PruneBounds {
  /// Branch-expanding lower bound: distance of the last *certain* entry in
  /// H. Everything within this disk is already known to the client.
  std::optional<double> lower;
  /// Branch-expanding upper bound: distance of the k-th (last) entry in H.
  /// No true nearest neighbor can lie beyond it.
  std::optional<double> upper;
  /// Id of the client's worst-ranked certified object — the (distance, id)
  /// rank cut that `lower` abbreviates. The client's certain set is a rank
  /// prefix, so an object at distance exactly `lower` is known to the
  /// client only if its id is <= this cut: co-distant objects that lost the
  /// id tie-break at the prefix boundary must still be reported. The
  /// default (max) skips every object at the lower bound, which is the
  /// correct reading when the cut id is unknown-but-maximal and matches the
  /// historical behavior for callers that set `lower` alone.
  int64_t lower_id_cut = std::numeric_limits<int64_t>::max();
};

/// Returns the k nearest objects to `query` in ascending distance order
/// using depth-first branch-and-bound. Counts node accesses into `counter`
/// when provided; `hook` routes each access through the storage engine
/// (pages are pinned only while a node's slots are read, so the traversal
/// needs a single free frame). Returns fewer than k when the tree is
/// smaller than k.
std::vector<Neighbor> DepthFirstKnn(const RStarTree& tree, geom::Vec2 query, int k,
                                    AccessCounter* counter = nullptr,
                                    NodePageHook* hook = nullptr);

/// Incremental best-first nearest-neighbor iterator (INN), optionally with
/// EINN pruning bounds. Next() reports objects in non-decreasing distance.
class BestFirstNnIterator {
 public:
  /// Creates an iterator over `tree` (which must outlive the iterator).
  /// `bounds` enables the EINN pruning rules; pass {} for plain INN.
  ///
  /// `prune_to_k`, when set, declares that only the k nearest objects
  /// OVERALL are of interest: the iterator then additionally prunes against
  /// the distance of the k-th nearest object discovered so far (the standard
  /// best-first kNN optimization — safe because no node or object beyond
  /// that distance can contribute to the top k). Objects skipped because
  /// they lie inside the client's certain disk (bounds.lower) still count
  /// toward the k. Only the first k (minus any lower-bound-known) results
  /// are guaranteed complete; entries already enqueued before the bound
  /// tightened may still be reported afterwards.
  /// `hook`, when attached, routes every charged access through the paged
  /// storage engine. In kOnExpand mode the node's page is pinned while its
  /// slots are read; in kOnEnqueue mode the pin is transient at enqueue
  /// time (the accounting style fetches a node when it enters the queue,
  /// and expansion reads the queued copy).
  BestFirstNnIterator(const RStarTree& tree, geom::Vec2 query, PruneBounds bounds = {},
                      AccessCountMode count_mode = AccessCountMode::kOnExpand,
                      std::optional<int> prune_to_k = std::nullopt,
                      NodePageHook* hook = nullptr);

  /// Returns the next nearest object, or nullopt when the search space is
  /// exhausted (including exhausted-by-upper-bound).
  std::optional<Neighbor> Next();

  /// Node accesses performed so far.
  const AccessCounter& accesses() const { return accesses_; }

 private:
  struct QueueItem {
    double key;                   // MINDIST for nodes, distance for objects
    const RStarTree::Node* node;  // null for object items
    ObjectEntry object;
  };
  struct Greater {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      // senn-lint: allow(L5-float-eq): strict-weak-order tie detection —
      // keys from the same MinDist/Dist path tie only when bit-identical,
      // and exact ties must reach the node/object and id rules below.
      if (a.key != b.key) return a.key > b.key;
      // At equal key a node must pop before an object: its MINDIST equals
      // the object's distance, so it may still contain a co-distant object
      // of smaller id. Co-distant objects pop in ascending id, making the
      // reported neighbor sequence follow the system (distance, id) rank
      // order. Nodes compare equal — their pop order is the deterministic
      // push order (never compare pointers: heap addresses vary per run).
      const bool a_object = a.node == nullptr;
      const bool b_object = b.node == nullptr;
      if (a_object != b_object) return a_object;
      if (a_object) return a.object.id > b.object.id;
      return false;
    }
  };

  void ExpandNode(const RStarTree::Node* node);
  /// Records an object distance into the dynamic top-k bound.
  void FeedDynamicBound(double distance);
  /// The tightest known upper limit on distances worth exploring.
  double EffectiveUpper() const;

  geom::Vec2 query_;
  PruneBounds bounds_;
  AccessCountMode count_mode_;
  std::optional<int> prune_to_k_;
  NodePageHook* hook_ = nullptr;
  // Max-heap of the best prune_to_k_ object distances discovered so far.
  std::priority_queue<double> best_distances_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, Greater> queue_;
  AccessCounter accesses_;
};

/// Convenience wrapper: the first k results of the (E)INN iterator.
std::vector<Neighbor> BestFirstKnn(const RStarTree& tree, geom::Vec2 query, int k,
                                   PruneBounds bounds = {}, AccessCounter* counter = nullptr,
                                   NodePageHook* hook = nullptr);

}  // namespace senn::rtree
