// R-tree distance join: all pairs (a, b), a from tree A and b from tree B,
// with Dist(a, b) <= threshold — the classic synchronized-descent spatial
// join (Brinkhoff, Kriegel, Seeger, SIGMOD 1993, adapted to point data and
// a distance predicate). This is the server-side substrate for the paper's
// second named future-work query type ("range and spatial join searches");
// core/join.h builds the sharing-based variant on top.
#pragma once

#include <utility>
#include <vector>

#include "src/rtree/rstar_tree.h"

namespace senn::rtree {

/// One join result pair.
struct JoinPair {
  ObjectEntry left;
  ObjectEntry right;
  double distance = 0.0;
};

/// Computes all pairs within `threshold`. Self-joins (passing the same tree
/// twice) return both (a,b) and (b,a) plus (a,a) diagonal pairs; callers
/// filter if needed. Node accesses are charged per visited node of each
/// tree into the respective counter when provided.
std::vector<JoinPair> DistanceJoin(const RStarTree& left, const RStarTree& right,
                                   double threshold, AccessCounter* left_counter = nullptr,
                                   AccessCounter* right_counter = nullptr);

}  // namespace senn::rtree
