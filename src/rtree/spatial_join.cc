#include "src/rtree/spatial_join.h"

#include <algorithm>

namespace senn::rtree {

namespace {

using Node = RStarTree::Node;

double MbrDistance(const geom::Mbr& a, const geom::Mbr& b) {
  double dx = std::max({a.lo.x - b.hi.x, 0.0, b.lo.x - a.hi.x});
  double dy = std::max({a.lo.y - b.hi.y, 0.0, b.lo.y - a.hi.y});
  return std::sqrt(dx * dx + dy * dy);
}

struct JoinContext {
  double threshold;
  AccessCounter* left_counter;
  AccessCounter* right_counter;
  std::vector<JoinPair>* out;
};

void Charge(const Node* node, AccessCounter* counter) {
  if (counter == nullptr) return;
  (node->IsLeaf() ? counter->leaf_nodes : counter->index_nodes) += 1;
}

// Synchronized descent. Each (left, right) node pair is visited at most
// once; subtree pairs whose MBRs are farther than the threshold are pruned.
void JoinNodes(const Node* left, const Node* right, const JoinContext& ctx) {
  if (left->IsLeaf() && right->IsLeaf()) {
    for (const RStarTree::Slot& ls : left->slots) {
      for (const RStarTree::Slot& rs : right->slots) {
        double d = geom::Dist(ls.object.position, rs.object.position);
        if (d <= ctx.threshold) {
          ctx.out->push_back({ls.object, rs.object, d});
        }
      }
    }
    return;
  }
  // Descend the deeper side (or both when equal) so leaves meet leaves.
  if (!left->IsLeaf() && (right->IsLeaf() || left->level >= right->level)) {
    geom::Mbr right_mbr = RStarTree::NodeMbr(*right);
    for (const RStarTree::Slot& ls : left->slots) {
      if (MbrDistance(ls.mbr, right_mbr) > ctx.threshold) continue;
      Charge(ls.child.get(), ctx.left_counter);
      JoinNodes(ls.child.get(), right, ctx);
    }
  } else {
    geom::Mbr left_mbr = RStarTree::NodeMbr(*left);
    for (const RStarTree::Slot& rs : right->slots) {
      if (MbrDistance(left_mbr, rs.mbr) > ctx.threshold) continue;
      Charge(rs.child.get(), ctx.right_counter);
      JoinNodes(left, rs.child.get(), ctx);
    }
  }
}

}  // namespace

std::vector<JoinPair> DistanceJoin(const RStarTree& left, const RStarTree& right,
                                   double threshold, AccessCounter* left_counter,
                                   AccessCounter* right_counter) {
  std::vector<JoinPair> out;
  if (threshold < 0.0 || left.size() == 0 || right.size() == 0) return out;
  JoinContext ctx{threshold, left_counter, right_counter, &out};
  Charge(left.root(), left_counter);
  Charge(right.root(), right_counter);
  JoinNodes(left.root(), right.root(), ctx);
  std::sort(out.begin(), out.end(), [](const JoinPair& a, const JoinPair& b) {
    if (a.left.id != b.left.id) return a.left.id < b.left.id;
    return a.right.id < b.right.id;
  });
  return out;
}

}  // namespace senn::rtree
