// R*-tree over 2-D point objects (Beckmann, Kriegel, Schneider, Seeger,
// SIGMOD 1990) — the index the paper's spatial database server uses for the
// POI data set ("Spatial data indexing is provided with the well known
// R*-tree algorithm", branching factor 30 for index and leaf nodes).
//
// The implementation is complete: ChooseSubtree with overlap minimization at
// the leaf level, forced reinsertion (30%) on first overflow per level, and
// the R* topological split (margin-driven axis choice, overlap-minimal
// distribution), plus deletion with tree condensation. Node accesses are
// observable through AccessCounter so the kNN algorithms can report the
// page-access metric the paper evaluates (Figure 17).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/geom/circle.h"
#include "src/geom/mbr.h"
#include "src/geom/vec2.h"

namespace senn::rtree {

/// A stored point object: position plus caller-supplied identifier.
struct ObjectEntry {
  geom::Vec2 position;
  int64_t id = -1;
};

/// Node (page) access counts, split by node kind. The paper's PAR metric
/// counts R*-tree node accesses as the predictor of I/O cost.
///
/// `index_nodes`/`leaf_nodes` are LOGICAL accesses (every charged node
/// visit); `index_misses`/`leaf_misses` are the PHYSICAL subset — buffer-
/// pool misses — which stays zero unless the traversal ran through a paged
/// storage engine (src/storage/node_pager.h). Logical counts never depend
/// on the pool, so pre-storage goldens pin them byte-for-byte.
struct AccessCounter {
  uint64_t index_nodes = 0;
  uint64_t leaf_nodes = 0;
  uint64_t index_misses = 0;
  uint64_t leaf_misses = 0;
  /// Batched-traversal attribution split (core/batch_server): of the
  /// physical misses, how many pages were wanted by two or more queries of
  /// the answering cluster (`shared_misses`) versus exactly one
  /// (`private_misses`). Charged only through ChargeBatchNodeAccess, so
  /// both stay zero on every single-query traversal and
  /// shared_misses + private_misses == misses() on a cluster counter.
  uint64_t shared_misses = 0;
  uint64_t private_misses = 0;

  bool operator==(const AccessCounter&) const = default;

  uint64_t total() const { return index_nodes + leaf_nodes; }
  uint64_t misses() const { return index_misses + leaf_misses; }
  uint64_t hits() const { return total() - misses(); }
  void Reset() { *this = AccessCounter{}; }
  AccessCounter& operator+=(const AccessCounter& o) {
    index_nodes += o.index_nodes;
    leaf_nodes += o.leaf_nodes;
    index_misses += o.index_misses;
    leaf_misses += o.leaf_misses;
    shared_misses += o.shared_misses;
    private_misses += o.private_misses;
    return *this;
  }
};

class NodePageHook;  // defined below (needs RStarTree::Node)

/// An R*-tree storing point objects.
class RStarTree {
 public:
  struct Options {
    /// Maximum entries per node (branching factor M). The paper sets 30.
    int max_entries = 30;
    /// Minimum entries per node (m). R* recommends 40% of M.
    int min_entries = 12;
    /// Fraction of entries removed by forced reinsertion (R* recommends 30%).
    double reinsert_fraction = 0.3;
  };

  /// A tree node. Exposed (read-only) so the kNN algorithms in knn.h can
  /// traverse without friend access; mutation is private to RStarTree.
  struct Node;
  /// One slot of a node: an MBR plus either a child node (index levels) or a
  /// stored object (leaf level).
  struct Slot {
    geom::Mbr mbr;
    std::unique_ptr<Node> child;  // null at leaf level
    ObjectEntry object;           // valid at leaf level only
  };
  struct Node {
    int level = 0;  // 0 = leaf
    Node* parent = nullptr;
    std::vector<Slot> slots;

    bool IsLeaf() const { return level == 0; }
  };

  /// Constructs a tree with default options (branching factor 30).
  RStarTree();
  explicit RStarTree(Options options);
  ~RStarTree();
  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts one point object. Duplicate positions/ids are allowed (the tree
  /// does not enforce uniqueness).
  void Insert(geom::Vec2 position, int64_t id);

  /// Removes the object with the given position and id.
  /// Returns NotFound if no exact match exists.
  Status Remove(geom::Vec2 position, int64_t id);

  /// Number of stored objects.
  size_t size() const { return size_; }
  /// Height of the tree (root level + 1). A fresh tree has one empty leaf,
  /// so height is at least 1.
  int height() const { return root_->level + 1; }
  /// MBR of all stored objects (empty rect when the tree is empty).
  geom::Mbr bounds() const { return NodeMbr(*root_); }
  const Options& options() const { return options_; }

  /// Root node for read-only traversal by search algorithms.
  const Node* root() const { return root_.get(); }

  /// Appends all objects whose position lies in `box` to `out`. Counts node
  /// accesses into `counter` when provided; routes them through `hook` (the
  /// storage engine) when attached.
  void RangeQuery(const geom::Mbr& box, std::vector<ObjectEntry>* out,
                  AccessCounter* counter = nullptr, NodePageHook* hook = nullptr) const;

  /// Appends all objects within the closed disk to `out`.
  void CircleQuery(const geom::Circle& circle, std::vector<ObjectEntry>* out,
                   AccessCounter* counter = nullptr, NodePageHook* hook = nullptr) const;

  /// Structural validation for tests: MBR containment, fan-out limits, leaf
  /// depth uniformity, object count. Returns the first violation found.
  Status CheckInvariants() const;

  /// Recomputes a node's MBR from its slots (exposed for tests/algorithms).
  static geom::Mbr NodeMbr(const Node& node);

 private:
  // STR bulk loading constructs node structures directly (rtree/bulk_load.h).
  friend RStarTree BulkLoad(std::vector<ObjectEntry> objects, Options options);

  Node* ChooseSubtree(const geom::Mbr& mbr, int target_level);
  void InsertSlot(Slot slot, int level, std::vector<bool>* reinserted_by_level);
  void OverflowTreatment(Node* node, std::vector<bool>* reinserted_by_level);
  void ForcedReinsert(Node* node, std::vector<bool>* reinserted_by_level);
  void SplitNode(Node* node, std::vector<bool>* reinserted_by_level);
  void RefreshMbrsUpward(Node* node);
  Slot* FindSlotInParent(Node* child);
  void CondenseAfterRemove(Node* leaf);
  void ReinsertSubtree(Slot slot, int level);

  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

/// Storage-engine hook for tree traversals. When attached, every charged
/// node access additionally fetches the node's backing page, so a buffer
/// pool (src/storage/) can model residency, eviction, and physical I/O
/// under the logical access stream. Implementations must be deterministic
/// functions of the fetch/unpin sequence.
class NodePageHook {
 public:
  virtual ~NodePageHook() = default;
  /// Fetches and pins the page backing `node`; returns true when the fetch
  /// was a physical miss (the page was not resident). Every Fetch is paired
  /// with exactly one Unpin after the node's slots have been read.
  virtual bool Fetch(const RStarTree::Node* node) = 0;
  virtual void Unpin(const RStarTree::Node* node) = 0;
};

/// Charges one logical access for `node` into `counter` (split by node
/// kind) and, when `hook` is attached, fetches the backing page and records
/// the physical miss alongside. Returns true when the hook pinned a page —
/// the caller must call `hook->Unpin(node)` once it is done reading the
/// node's slots. Either pointer may be null.
inline bool ChargeNodeAccess(const RStarTree::Node* node, AccessCounter* counter,
                             NodePageHook* hook) {
  const bool miss = hook != nullptr && hook->Fetch(node);
  if (counter != nullptr) {
    if (node->IsLeaf()) {
      counter->leaf_nodes += 1;
      if (miss) counter->leaf_misses += 1;
    } else {
      counter->index_nodes += 1;
      if (miss) counter->index_misses += 1;
    }
  }
  return hook != nullptr;
}

/// Multi-query companion of ChargeNodeAccess for batched traversals
/// (core/batch_server): the node is fetched ONCE for the whole cluster — one
/// logical access, at most one physical miss — no matter how many queries
/// read its slots, which is what closes the double-charge hazard of running
/// N per-query traversals over the same pages. The access is attributed to
/// `owner` (the per-query counter it is billed to) and mirrored into
/// `cluster` (the shared-traversal total), where a miss is additionally
/// classified shared (`shared` true: two or more queries wanted the node)
/// or private. Returns true when the hook pinned a page — the caller owes
/// one hook->Unpin(node) after reading the slots. Any pointer may be null.
inline bool ChargeBatchNodeAccess(const RStarTree::Node* node, AccessCounter* owner,
                                  AccessCounter* cluster, bool shared, NodePageHook* hook) {
  const bool miss = hook != nullptr && hook->Fetch(node);
  for (AccessCounter* counter : {owner, cluster}) {
    if (counter == nullptr) continue;
    if (node->IsLeaf()) {
      counter->leaf_nodes += 1;
      if (miss) counter->leaf_misses += 1;
    } else {
      counter->index_nodes += 1;
      if (miss) counter->index_misses += 1;
    }
    if (miss) {
      if (shared) {
        counter->shared_misses += 1;
      } else {
        counter->private_misses += 1;
      }
    }
  }
  return hook != nullptr;
}

}  // namespace senn::rtree
