#include "src/rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace senn::rtree {

using geom::Mbr;
using geom::Vec2;

RStarTree::RStarTree() : RStarTree(Options{}) {}

RStarTree::RStarTree(Options options) : options_(options), root_(std::make_unique<Node>()) {
  // Clamp pathological configurations rather than failing: the tree is a
  // substrate and every caller wants a working index.
  options_.max_entries = std::max(options_.max_entries, 4);
  options_.min_entries = std::clamp(options_.min_entries, 2, options_.max_entries / 2);
}

RStarTree::~RStarTree() = default;
RStarTree::RStarTree(RStarTree&&) noexcept = default;
RStarTree& RStarTree::operator=(RStarTree&&) noexcept = default;

Mbr RStarTree::NodeMbr(const Node& node) {
  Mbr mbr = Mbr::Empty();
  for (const Slot& s : node.slots) mbr.Expand(s.mbr);
  return mbr;
}

void RStarTree::Insert(Vec2 position, int64_t id) {
  Slot slot;
  slot.mbr = Mbr::OfPoint(position);
  slot.object = ObjectEntry{position, id};
  // One reinsert allowed per level per top-level insertion (R* rule OT1).
  std::vector<bool> reinserted_by_level(static_cast<size_t>(root_->level) + 2, false);
  InsertSlot(std::move(slot), /*level=*/0, &reinserted_by_level);
  ++size_;
}

RStarTree::Node* RStarTree::ChooseSubtree(const Mbr& mbr, int target_level) {
  Node* node = root_.get();
  while (node->level > target_level) {
    Slot* best = nullptr;
    if (node->level == target_level + 1 && node->level == 1) {
      // Children are leaves: minimize overlap enlargement, ties broken by
      // area enlargement, then by area (the R* leaf-level heuristic).
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = best_overlap;
      double best_area = best_overlap;
      for (Slot& cand : node->slots) {
        Mbr grown = cand.mbr;
        grown.Expand(mbr);
        double overlap_delta = 0.0;
        for (const Slot& other : node->slots) {
          if (&other == &cand) continue;
          overlap_delta += grown.OverlapArea(other.mbr) - cand.mbr.OverlapArea(other.mbr);
        }
        double enlarge = cand.mbr.Enlargement(mbr);
        double area = cand.mbr.Area();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area)))) {
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
          best = &cand;
        }
      }
    } else {
      // Children are index nodes: minimize area enlargement, ties by area.
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = best_enlarge;
      for (Slot& cand : node->slots) {
        double enlarge = cand.mbr.Enlargement(mbr);
        double area = cand.mbr.Area();
        if (enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          best = &cand;
        }
      }
    }
    node = best->child.get();
  }
  return node;
}

void RStarTree::InsertSlot(Slot slot, int level, std::vector<bool>* reinserted_by_level) {
  Node* target = ChooseSubtree(slot.mbr, level);
  if (slot.child) slot.child->parent = target;
  target->slots.push_back(std::move(slot));
  RefreshMbrsUpward(target);
  if (static_cast<int>(target->slots.size()) > options_.max_entries) {
    OverflowTreatment(target, reinserted_by_level);
  }
}

void RStarTree::OverflowTreatment(Node* node, std::vector<bool>* reinserted_by_level) {
  size_t level = static_cast<size_t>(node->level);
  if (level >= reinserted_by_level->size()) reinserted_by_level->resize(level + 1, false);
  if (node->parent != nullptr && !(*reinserted_by_level)[level]) {
    (*reinserted_by_level)[level] = true;
    ForcedReinsert(node, reinserted_by_level);
  } else {
    SplitNode(node, reinserted_by_level);
  }
}

void RStarTree::ForcedReinsert(Node* node, std::vector<bool>* reinserted_by_level) {
  Mbr node_mbr = NodeMbr(*node);
  Vec2 center = node_mbr.Center();
  // Sort by distance of the slot MBR center to the node center, descending.
  std::vector<size_t> order(node->slots.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // senn-lint: allow(L1-raw-order): tree-construction heuristic, not a
  // result order — slots have no POI id at index levels; the stable sort
  // pins equal-distance slots to their in-node order, a pure function of
  // the insertion sequence.
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return geom::Dist2(node->slots[a].mbr.Center(), center) >
           geom::Dist2(node->slots[b].mbr.Center(), center);
  });
  size_t p = std::max<size_t>(
      1, static_cast<size_t>(std::floor(options_.reinsert_fraction *
                                        static_cast<double>(node->slots.size()))));
  std::vector<Slot> removed;
  removed.reserve(p);
  std::vector<bool> is_removed(node->slots.size(), false);
  for (size_t i = 0; i < p; ++i) is_removed[order[i]] = true;
  std::vector<Slot> kept;
  kept.reserve(node->slots.size() - p);
  for (size_t i = 0; i < node->slots.size(); ++i) {
    if (is_removed[i]) {
      removed.push_back(std::move(node->slots[i]));
    } else {
      kept.push_back(std::move(node->slots[i]));
    }
  }
  node->slots = std::move(kept);
  RefreshMbrsUpward(node);
  // Close reinsert: add back starting with the entry closest to the center
  // (the removed list is sorted farthest-first, so walk it in reverse).
  int level = node->level;
  for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
    InsertSlot(std::move(*it), level, reinserted_by_level);
  }
}

namespace {

// One candidate distribution for the R* split: the first `split_point` slots
// of a sorted order go left, the rest right.
struct SplitGoodness {
  double margin_sum = 0.0;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  int best_split = -1;
  bool use_upper_sort = false;
};

}  // namespace

void RStarTree::SplitNode(Node* node, std::vector<bool>* reinserted_by_level) {
  const int total = static_cast<int>(node->slots.size());
  const int min_e = options_.min_entries;

  // For each axis (0=x, 1=y) and each sort key (lower/upper coordinate),
  // evaluate all legal distributions.
  auto sorted_order = [&](int axis, bool by_upper) {
    std::vector<size_t> order(node->slots.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    // Stable: slots tying on the split key keep their in-node order, so the
    // chosen split is a pure function of the insertion sequence.
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const Mbr& ma = node->slots[a].mbr;
      const Mbr& mb = node->slots[b].mbr;
      double ka = axis == 0 ? (by_upper ? ma.hi.x : ma.lo.x) : (by_upper ? ma.hi.y : ma.lo.y);
      double kb = axis == 0 ? (by_upper ? mb.hi.x : mb.lo.x) : (by_upper ? mb.hi.y : mb.lo.y);
      return ka < kb;
    });
    return order;
  };

  auto evaluate_axis = [&](int axis) {
    SplitGoodness g;
    for (bool by_upper : {false, true}) {
      std::vector<size_t> order = sorted_order(axis, by_upper);
      // Prefix/suffix MBRs for O(n) distribution evaluation.
      std::vector<Mbr> prefix(order.size()), suffix(order.size());
      Mbr acc = Mbr::Empty();
      for (size_t i = 0; i < order.size(); ++i) {
        acc.Expand(node->slots[order[i]].mbr);
        prefix[i] = acc;
      }
      acc = Mbr::Empty();
      for (size_t i = order.size(); i-- > 0;) {
        acc.Expand(node->slots[order[i]].mbr);
        suffix[i] = acc;
      }
      for (int left = min_e; left <= total - min_e; ++left) {
        const Mbr& l = prefix[static_cast<size_t>(left - 1)];
        const Mbr& r = suffix[static_cast<size_t>(left)];
        g.margin_sum += l.Margin() + r.Margin();
        double overlap = l.OverlapArea(r);
        double area = l.Area() + r.Area();
        if (overlap < g.best_overlap ||
            (overlap == g.best_overlap && area < g.best_area)) {
          g.best_overlap = overlap;
          g.best_area = area;
          g.best_split = left;
          g.use_upper_sort = by_upper;
        }
      }
    }
    return g;
  };

  SplitGoodness gx = evaluate_axis(0);
  SplitGoodness gy = evaluate_axis(1);
  int axis = gx.margin_sum <= gy.margin_sum ? 0 : 1;
  const SplitGoodness& g = axis == 0 ? gx : gy;

  std::vector<size_t> order = sorted_order(axis, g.use_upper_sort);
  auto sibling = std::make_unique<Node>();
  sibling->level = node->level;
  std::vector<Slot> left_slots;
  left_slots.reserve(static_cast<size_t>(g.best_split));
  for (size_t i = 0; i < order.size(); ++i) {
    Slot& s = node->slots[order[i]];
    if (static_cast<int>(i) < g.best_split) {
      left_slots.push_back(std::move(s));
    } else {
      if (s.child) s.child->parent = sibling.get();
      sibling->slots.push_back(std::move(s));
    }
  }
  node->slots = std::move(left_slots);

  if (node->parent == nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    std::unique_ptr<Node> old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    Slot left;
    left.mbr = NodeMbr(*old_root);
    left.child = std::move(old_root);
    Slot right;
    right.mbr = NodeMbr(*sibling);
    right.child = std::move(sibling);
    new_root->slots.push_back(std::move(left));
    new_root->slots.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  Slot extra;
  extra.mbr = NodeMbr(*sibling);
  extra.child = std::move(sibling);
  parent->slots.push_back(std::move(extra));
  // The split shrank `node`: refresh its slot in the parent, then the
  // ancestors (which also accounts for the sibling just added).
  RefreshMbrsUpward(node);
  if (static_cast<int>(parent->slots.size()) > options_.max_entries) {
    OverflowTreatment(parent, reinserted_by_level);
  }
}

void RStarTree::RefreshMbrsUpward(Node* node) {
  Node* child = node;
  Node* parent = node->parent;
  while (parent != nullptr) {
    Slot* slot = FindSlotInParent(child);
    slot->mbr = NodeMbr(*child);
    child = parent;
    parent = parent->parent;
  }
}

RStarTree::Slot* RStarTree::FindSlotInParent(Node* child) {
  for (Slot& s : child->parent->slots) {
    if (s.child.get() == child) return &s;
  }
  return nullptr;  // unreachable for a structurally sound tree
}

Status RStarTree::Remove(Vec2 position, int64_t id) {
  // Locate the leaf slot with an exact match by descending only into nodes
  // whose MBR contains the position.
  Node* found_leaf = nullptr;
  size_t found_index = 0;
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty() && found_leaf == nullptr) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->IsLeaf()) {
      for (size_t i = 0; i < node->slots.size(); ++i) {
        const ObjectEntry& o = node->slots[i].object;
        if (o.id == id && o.position == position) {
          found_leaf = node;
          found_index = i;
          break;
        }
      }
    } else {
      for (Slot& s : node->slots) {
        if (s.mbr.Contains(position)) stack.push_back(s.child.get());
      }
    }
  }
  if (found_leaf == nullptr) return Status::NotFound("no object with that position and id");
  found_leaf->slots.erase(found_leaf->slots.begin() + static_cast<long>(found_index));
  --size_;
  CondenseAfterRemove(found_leaf);
  return Status::OK();
}

void RStarTree::CondenseAfterRemove(Node* leaf) {
  // Walk up; underfull nodes are dissolved and their slots reinserted.
  std::vector<Slot> orphans;
  std::vector<int> orphan_levels;
  Node* node = leaf;
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (static_cast<int>(node->slots.size()) < options_.min_entries) {
      for (Slot& s : node->slots) {
        orphans.push_back(std::move(s));
        orphan_levels.push_back(node->level);
      }
      // Unlink this node from its parent.
      for (size_t i = 0; i < parent->slots.size(); ++i) {
        if (parent->slots[i].child.get() == node) {
          parent->slots.erase(parent->slots.begin() + static_cast<long>(i));
          break;
        }
      }
    } else {
      RefreshMbrsUpward(node);
    }
    node = parent;
  }
  // Shrink the root if it lost all children, or has a single child subtree.
  while (!root_->IsLeaf() && root_->slots.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->slots[0].child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->IsLeaf() && root_->slots.empty()) {
    root_ = std::make_unique<Node>();
  }
  for (size_t i = 0; i < orphans.size(); ++i) {
    ReinsertSubtree(std::move(orphans[i]), orphan_levels[i]);
  }
}

void RStarTree::ReinsertSubtree(Slot slot, int level) {
  // Slots at or above the current root level cannot be grafted back in
  // place; decompose them into their children (ultimately leaf objects).
  if (level > 0 && level >= root_->level) {
    Node* subtree = slot.child.get();
    for (Slot& child_slot : subtree->slots) {
      ReinsertSubtree(std::move(child_slot), level - 1);
    }
    return;
  }
  std::vector<bool> reinserted(static_cast<size_t>(root_->level) + 2, true);
  InsertSlot(std::move(slot), level, &reinserted);
}

void RStarTree::RangeQuery(const Mbr& box, std::vector<ObjectEntry>* out,
                           AccessCounter* counter, NodePageHook* hook) const {
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    const bool pinned = ChargeNodeAccess(node, counter, hook);
    for (const Slot& s : node->slots) {
      if (!box.Intersects(s.mbr)) continue;
      if (node->IsLeaf()) {
        out->push_back(s.object);
      } else {
        stack.push_back(s.child.get());
      }
    }
    if (pinned) hook->Unpin(node);
  }
}

void RStarTree::CircleQuery(const geom::Circle& circle, std::vector<ObjectEntry>* out,
                            AccessCounter* counter, NodePageHook* hook) const {
  Mbr box{{circle.center.x - circle.radius, circle.center.y - circle.radius},
          {circle.center.x + circle.radius, circle.center.y + circle.radius}};
  std::vector<ObjectEntry> candidates;
  RangeQuery(box, &candidates, counter, hook);
  for (const ObjectEntry& o : candidates) {
    if (circle.Contains(o.position)) out->push_back(o);
  }
}

Status RStarTree::CheckInvariants() const {
  size_t object_count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node != root_.get()) {
      if (static_cast<int>(node->slots.size()) < options_.min_entries) {
        return Status::Internal("underfull non-root node");
      }
    }
    if (static_cast<int>(node->slots.size()) > options_.max_entries) {
      return Status::Internal("overfull node");
    }
    for (const Slot& s : node->slots) {
      if (node->IsLeaf()) {
        ++object_count;
        if (s.child != nullptr) return Status::Internal("leaf slot with child pointer");
        if (!(s.mbr.lo == s.object.position) || !(s.mbr.hi == s.object.position)) {
          return Status::Internal("leaf MBR does not match object position");
        }
      } else {
        if (s.child == nullptr) return Status::Internal("index slot without child");
        if (s.child->parent != node) return Status::Internal("broken parent pointer");
        if (s.child->level != node->level - 1) return Status::Internal("level mismatch");
        Mbr expected = NodeMbr(*s.child);
        if (!(s.mbr.lo == expected.lo) || !(s.mbr.hi == expected.hi)) {
          return Status::Internal("stale slot MBR");
        }
        stack.push_back(s.child.get());
      }
    }
  }
  if (object_count != size_) return Status::Internal("size mismatch");
  return Status::OK();
}

}  // namespace senn::rtree
