#include "src/rtree/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace senn::rtree {

namespace {

using Node = RStarTree::Node;
using Slot = RStarTree::Slot;

// Splits `count` items into groups of at most `cap`, rebalancing the tail so
// every group has at least `min_size` (requires cap >= 2 * min_size, which
// the RStarTree options clamp guarantees). Returns the group sizes.
std::vector<size_t> GroupSizes(size_t count, size_t cap, size_t min_size) {
  std::vector<size_t> sizes;
  size_t remaining = count;
  while (remaining > 0) {
    size_t take = std::min(cap, remaining);
    sizes.push_back(take);
    remaining -= take;
  }
  if (sizes.size() >= 2 && sizes.back() < min_size) {
    size_t need = min_size - sizes.back();
    sizes[sizes.size() - 2] -= need;
    sizes.back() += need;
  }
  return sizes;
}

// Packs `slots` (all at the same level) into parent nodes with STR: sort by
// center x, slice, sort slices by center y, emit runs.
std::vector<std::unique_ptr<Node>> PackLevel(std::vector<Slot> slots, int child_level,
                                             const RStarTree::Options& options) {
  const size_t cap = static_cast<size_t>(options.max_entries);
  const size_t min_size = static_cast<size_t>(options.min_entries);
  const size_t n = slots.size();
  const size_t node_count = (n + cap - 1) / cap;
  const size_t slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(node_count))));
  const size_t slice_size = (n + slices - 1) / slices;

  // Stable: co-located slots keep their input order (object id order at the
  // leaf level, child preorder above), so the packing is a pure function of
  // the input sequence even for duplicate coordinates (lattice worlds).
  std::stable_sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    return a.mbr.Center().x < b.mbr.Center().x;
  });

  std::vector<std::unique_ptr<Node>> nodes;
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min(begin + slice_size, n);
    // Absorb a tail slice too small to form a legal node.
    if (n - end > 0 && n - end < min_size) end = n;
    std::stable_sort(slots.begin() + static_cast<long>(begin),
                     slots.begin() + static_cast<long>(end),
                     [](const Slot& a, const Slot& b) {
                       return a.mbr.Center().y < b.mbr.Center().y;
                     });
    size_t cursor = begin;
    for (size_t take : GroupSizes(end - begin, cap, min_size)) {
      auto node = std::make_unique<Node>();
      node->level = child_level + 1;
      node->slots.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        Slot& s = slots[cursor++];
        if (s.child) s.child->parent = node.get();
        node->slots.push_back(std::move(s));
      }
      nodes.push_back(std::move(node));
    }
    begin = end;
  }
  return nodes;
}

}  // namespace

RStarTree BulkLoad(std::vector<ObjectEntry> objects, RStarTree::Options options) {
  RStarTree tree(options);
  const size_t n = objects.size();
  if (n == 0) return tree;
  if (n <= static_cast<size_t>(tree.options_.max_entries)) {
    for (const ObjectEntry& o : objects) tree.Insert(o.position, o.id);
    return tree;
  }

  // Leaf level: object slots packed with STR. PackLevel produces nodes at
  // child_level + 1; feed it level -1 so leaves land at level 0.
  std::vector<Slot> leaf_slots;
  leaf_slots.reserve(n);
  for (const ObjectEntry& o : objects) {
    Slot s;
    s.mbr = geom::Mbr::OfPoint(o.position);
    s.object = o;
    leaf_slots.push_back(std::move(s));
  }
  std::vector<std::unique_ptr<Node>> level = PackLevel(std::move(leaf_slots), -1,
                                                       tree.options_);

  // Upper levels until a single node remains.
  while (level.size() > 1) {
    std::vector<Slot> parent_slots;
    parent_slots.reserve(level.size());
    int child_level = level.front()->level;
    for (std::unique_ptr<Node>& node : level) {
      Slot s;
      s.mbr = RStarTree::NodeMbr(*node);
      s.child = std::move(node);
      parent_slots.push_back(std::move(s));
    }
    level = PackLevel(std::move(parent_slots), child_level, tree.options_);
  }

  tree.root_ = std::move(level.front());
  tree.root_->parent = nullptr;
  tree.size_ = n;
  return tree;
}

}  // namespace senn::rtree
