// Sort-Tile-Recursive (STR) bulk loading for the R*-tree (Leutenegger,
// Lopez, Edgington, ICDE 1997). Packs a static point set bottom-up into a
// tree with near-100% node utilization — the natural way to build the
// server's POI index for county-scale data sets, orders of magnitude faster
// than one-at-a-time insertion and yielding tighter leaves.
//
// The resulting tree satisfies every RStarTree invariant (validated by
// CheckInvariants in tests) and supports subsequent dynamic inserts and
// removals.
#pragma once

#include <vector>

#include "src/rtree/rstar_tree.h"

namespace senn::rtree {

/// Builds a tree over `objects` with STR packing. The input vector is
/// consumed (sorted in place). Duplicate positions are allowed.
RStarTree BulkLoad(std::vector<ObjectEntry> objects,
                   RStarTree::Options options = RStarTree::Options());

}  // namespace senn::rtree
