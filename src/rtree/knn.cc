#include "src/rtree/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/rank.h"

namespace senn::rtree {

using geom::Vec2;

namespace {

// Recursive depth-first branch-and-bound. `heap` holds the current best k
// distances as a max-heap; prune subtrees whose MINDIST exceeds the current
// k-th distance.
void DfVisit(const RStarTree::Node* node, Vec2 query, int k,
             std::vector<Neighbor>* best, AccessCounter* counter, NodePageHook* hook) {
  const bool pinned = ChargeNodeAccess(node, counter, hook);
  auto worst_distance = [&]() {
    return static_cast<int>(best->size()) < k
               ? std::numeric_limits<double>::infinity()
               : best->front().distance;
  };
  // Max-heap under the system (distance, id) rank order: the front is the
  // worst of the best k, and co-distant objects keep the smaller ids.
  auto by_rank = [](const Neighbor& a, const Neighbor& b) {
    return senn::RanksBefore(a.distance, a.object.id, b.distance, b.object.id);
  };
  auto beats_worst = [&](double d, int64_t id) {
    return static_cast<int>(best->size()) < k ||
           senn::RanksBefore(d, id, best->front().distance, best->front().object.id);
  };
  if (node->IsLeaf()) {
    for (const RStarTree::Slot& s : node->slots) {
      double d = geom::Dist(query, s.object.position);
      if (!beats_worst(d, s.object.id)) continue;
      if (static_cast<int>(best->size()) == k) {
        std::pop_heap(best->begin(), best->end(), by_rank);
        best->pop_back();
      }
      best->push_back({s.object, d});
      std::push_heap(best->begin(), best->end(), by_rank);
    }
    if (pinned) hook->Unpin(node);
    return;
  }
  // Visit children in MINDIST order (the classic heuristic) and prune with
  // the running k-th distance.
  std::vector<std::pair<double, const RStarTree::Node*>> children;
  children.reserve(node->slots.size());
  for (const RStarTree::Slot& s : node->slots) {
    children.emplace_back(s.mbr.MinDist(query), s.child.get());
  }
  // The node's slots are fully read into `children`; unpin before recursing
  // so the depth-first path never holds more than one page pinned.
  if (pinned) hook->Unpin(node);
  std::sort(children.begin(), children.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [mindist, child] : children) {
    // Strict >: a child whose MINDIST ties the current k-th distance can
    // still hold a co-distant object with a smaller id that outranks it.
    if (mindist > worst_distance()) break;  // sorted: the rest are no better
    DfVisit(child, query, k, best, counter, hook);
  }
}

}  // namespace

std::vector<Neighbor> DepthFirstKnn(const RStarTree& tree, Vec2 query, int k,
                                    AccessCounter* counter, NodePageHook* hook) {
  std::vector<Neighbor> best;  // max-heap by distance
  if (k <= 0) return best;
  best.reserve(static_cast<size_t>(k));
  DfVisit(tree.root(), query, k, &best, counter, hook);
  std::sort(best.begin(), best.end(), [](const Neighbor& a, const Neighbor& b) {
    return senn::RanksBefore(a.distance, a.object.id, b.distance, b.object.id);
  });
  return best;
}

BestFirstNnIterator::BestFirstNnIterator(const RStarTree& tree, Vec2 query,
                                         PruneBounds bounds, AccessCountMode count_mode,
                                         std::optional<int> prune_to_k, NodePageHook* hook)
    : query_(query),
      bounds_(bounds),
      count_mode_(count_mode),
      prune_to_k_(prune_to_k),
      hook_(hook) {
  // The root page is always fetched (in both accounting modes).
  const bool pinned = ChargeNodeAccess(tree.root(), &accesses_, hook_);
  ExpandNode(tree.root());
  if (pinned) hook_->Unpin(tree.root());
}

void BestFirstNnIterator::FeedDynamicBound(double distance) {
  // prune_to_k <= 0 declares no interest in any object; the degenerate bag
  // stays empty (top() on it would be UB) and the static bounds do all
  // pruning.
  if (!prune_to_k_.has_value() || *prune_to_k_ <= 0) return;
  if (static_cast<int>(best_distances_.size()) < *prune_to_k_) {
    best_distances_.push(distance);
  } else if (distance < best_distances_.top()) {
    best_distances_.pop();
    best_distances_.push(distance);
  }
}

double BestFirstNnIterator::EffectiveUpper() const {
  double upper = bounds_.upper.value_or(std::numeric_limits<double>::infinity());
  if (prune_to_k_.has_value() && *prune_to_k_ > 0 &&
      static_cast<int>(best_distances_.size()) >= *prune_to_k_) {
    upper = std::min(upper, best_distances_.top());
  }
  return upper;
}

void BestFirstNnIterator::ExpandNode(const RStarTree::Node* node) {
  // Accesses are charged by the caller: the constructor for the root, and
  // Next() (kOnExpand) or the enqueue site below (kOnEnqueue) otherwise, so
  // the page stays pinned exactly while the slots are read here.
  for (const RStarTree::Slot& s : node->slots) {
    if (node->IsLeaf()) {
      double d = geom::Dist(query_, s.object.position);
      // Objects inside the certain disk are already known to the client;
      // they still witness the dynamic top-k bound. On the disk's boundary
      // the client holds only the ids up to its rank cut — a co-distant
      // object past the cut was tie-broken out of the client's certain
      // prefix and must be reported like any other candidate.
      if (bounds_.lower.has_value() &&
          (d < *bounds_.lower ||
           // senn-lint: allow(L5-float-eq): bit-exact boundary tie — the
           // client's lower bound is the cached radius from the same Dist()
           // chain, and the id cut keeps co-distant tie-losers reportable.
           (d == *bounds_.lower && s.object.id <= bounds_.lower_id_cut))) {
        FeedDynamicBound(d);
        continue;
      }
      if (d > EffectiveUpper()) continue;
      FeedDynamicBound(d);
      queue_.push({d, nullptr, s.object});
    } else {
      double mindist = s.mbr.MinDist(query_);
      // Upward pruning: the true kNN all lie within the upper bound (the
      // shipped client bound and/or the running k-th-best distance).
      if (mindist > EffectiveUpper()) continue;
      // Downward pruning: MBRs fully inside the certain disk C_r contain
      // only POIs the client has already verified.
      if (bounds_.lower.has_value() && s.mbr.MaxDist(query_) < *bounds_.lower) continue;
      if (count_mode_ == AccessCountMode::kOnEnqueue) {
        // Enqueue accounting fetches the child page as it enters the queue;
        // the pin is transient (expansion later reads the queued copy).
        if (ChargeNodeAccess(s.child.get(), &accesses_, hook_)) {
          hook_->Unpin(s.child.get());
        }
      }
      queue_.push({mindist, s.child.get(), ObjectEntry{}});
    }
  }
}

std::optional<Neighbor> BestFirstNnIterator::Next() {
  while (!queue_.empty()) {
    QueueItem item = queue_.top();
    queue_.pop();
    if (item.node == nullptr) return Neighbor{item.object, item.key};
    // Only non-root nodes reach the queue, so charging every expansion here
    // matches the historical "root at init, others on expand" counting.
    bool pinned = false;
    if (count_mode_ == AccessCountMode::kOnExpand) {
      pinned = ChargeNodeAccess(item.node, &accesses_, hook_);
    }
    ExpandNode(item.node);
    if (pinned) hook_->Unpin(item.node);
  }
  return std::nullopt;
}

std::vector<Neighbor> BestFirstKnn(const RStarTree& tree, Vec2 query, int k,
                                   PruneBounds bounds, AccessCounter* counter,
                                   NodePageHook* hook) {
  std::vector<Neighbor> out;
  if (k <= 0) return out;
  BestFirstNnIterator it(tree, query, bounds, AccessCountMode::kOnExpand, std::nullopt,
                         hook);
  out.reserve(static_cast<size_t>(k));
  while (static_cast<int>(out.size()) < k) {
    std::optional<Neighbor> n = it.Next();
    if (!n.has_value()) break;
    out.push_back(*n);
  }
  if (counter != nullptr) *counter += it.accesses();
  return out;
}

}  // namespace senn::rtree
