// Deterministic discrete-event queue for the messaging subsystem.
//
// Events pop in (time, insertion order) order: ties on the simulated clock
// resolve FIFO by a monotone sequence number, never by pointer or heap
// internals, so an exchange replays identically for a given draw sequence —
// the property the simulator's cross-thread determinism rests on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace senn::net {

/// What a scheduled event means to the exchange state machine.
enum class EventKind {
  kReplyArrival = 0,  // payload = candidate index whose REPLY lands now
  kDeadline = 1,      // the collection timer for the current round fires
};

struct Event {
  double time = 0.0;   // seconds since the query was issued
  uint64_t seq = 0;    // insertion order; FIFO tie-break
  EventKind kind = EventKind::kDeadline;
  int payload = -1;
};

/// Binary-heap event queue with deterministic ordering.
class EventQueue {
 public:
  void Schedule(double time, EventKind kind, int payload);
  bool Empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Removes and returns the earliest event (FIFO among equal times).
  Event PopNext();
  void Clear();

 private:
  static bool Later(const Event& a, const Event& b);
  std::vector<Event> heap_;  // min-heap via std::push_heap with Later
  uint64_t next_seq_ = 0;
};

}  // namespace senn::net
