#include "src/net/exchange.h"

#include <algorithm>

#include "src/net/event_queue.h"
#include "src/net/message.h"

namespace senn::net {

ExchangeResult RunExchange(const ChannelConfig& cfg,
                           const std::vector<PeerProfile>& peers, Rng* rng) {
  ExchangeResult res;
  res.arrived.reserve(peers.size());
  EventQueue queue;
  const double timeout = std::max(cfg.reply_timeout_s, 0.0);
  const int rounds = std::max(0, cfg.max_retries) + 1;

  for (int round = 0; round < rounds; ++round) {
    const double t0 = static_cast<double>(round) * timeout;
    res.messages_sent += 1.0;  // the broadcast REQ
    res.bytes_sent += RequestBytes();
    queue.Clear();
    for (size_t i = 0; i < peers.size(); ++i) {
      // REQ reception at peer i (independent per receiver).
      if (DrawLost(cfg, rng)) {
        ++res.transmissions_lost;
        continue;
      }
      const double req_leg = DrawLatency(cfg, rng);
      // The peer transmits its REPLY whether or not it will survive.
      res.messages_sent += 1.0;
      res.bytes_sent += ReplyBytes(peers[i].reply_tuples);
      if (DrawLost(cfg, rng)) {
        ++res.transmissions_lost;
        continue;
      }
      const double reply_leg = DrawLatency(cfg, rng);
      queue.Schedule(t0 + req_leg + reply_leg, EventKind::kReplyArrival,
                     static_cast<int>(i));
    }
    queue.Schedule(t0 + timeout, EventKind::kDeadline, -1);

    size_t collected = 0;
    double last_arrival = t0;
    while (!queue.Empty()) {
      Event e = queue.PopNext();
      if (e.kind == EventKind::kDeadline) break;
      res.arrived.push_back(e.payload);
      ++collected;
      last_arrival = e.time;
      if (collected == peers.size()) break;  // full census: resolve early
    }
    // Whatever is still queued missed this round's deadline.
    while (!queue.Empty()) {
      if (queue.PopNext().kind == EventKind::kReplyArrival) ++res.replies_late;
    }

    if (collected == peers.size()) {
      // Every candidate (possibly zero) delivered: resolve at the last
      // arrival instead of waiting out the timer.
      res.elapsed_s = last_arrival;
      return res;
    }
    if (collected > 0) {
      // Partial harvest: the host waited the full round for stragglers.
      res.elapsed_s = t0 + timeout;
      return res;
    }
    if (round + 1 < rounds) ++res.retries;
  }
  // Every round was silent.
  res.elapsed_s = static_cast<double>(rounds) * timeout;
  return res;
}

}  // namespace senn::net
