// The per-query P2P exchange state machine: broadcast REQ, collect REPLYs
// until a deadline, rebroadcast (bounded) after silent rounds, and report
// which peers' caches actually made it to the querying host — plus the
// communication bill (messages, bytes, retries, losses, elapsed time).
//
// Semantics:
//  * One broadcast REQ per round; every candidate peer (a reachable host
//    with a non-empty cache) receives it independently (broadcast over a
//    lossy medium), loses it with probability `loss`, and otherwise
//    transmits one REPLY, itself subject to loss and two link-latency
//    draws (REQ leg + REPLY leg).
//  * The querying host collects arrivals until the round's deadline
//    (`reply_timeout_s` after the broadcast). Whatever arrived is the peer
//    set SENN verifies with — partial harvests are a normal case.
//  * A completely silent round triggers a rebroadcast at the deadline, up
//    to `max_retries` times; after the last silent round the query falls
//    through to the server with zero peers.
//  * Idealization (documented in EXPERIMENTS.md): when every in-flight
//    candidate's REPLY has arrived the host resolves immediately instead
//    of waiting out the timer, so an ideal channel completes at t = 0 and
//    reproduces the historical instantaneous behavior exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/net/channel.h"

namespace senn::net {

/// One reachable peer with a non-empty cache (the querying host's own
/// cache never crosses the air and is not a candidate).
struct PeerProfile {
  int32_t id = 0;
  size_t reply_tuples = 0;  // cached POIs its REPLY would carry
};

/// Outcome of one exchange.
struct ExchangeResult {
  /// Indices into the candidate vector whose replies arrived in time, in
  /// arrival order (deterministic: FIFO among equal arrival times).
  std::vector<int> arrived;
  /// Seconds from the first broadcast until the host stopped collecting.
  double elapsed_s = 0.0;
  /// Transmissions put on the air: REQ broadcasts + peer REPLYs.
  double messages_sent = 0.0;
  double bytes_sent = 0.0;
  /// Silent rounds that triggered a rebroadcast.
  int retries = 0;
  /// Transmissions the channel dropped (REQ receptions or REPLYs).
  uint64_t transmissions_lost = 0;
  /// REPLYs that were transmitted but landed after their round's deadline.
  uint64_t replies_late = 0;
};

/// Runs one exchange. Deterministic in (cfg, peers, the rng's state); with
/// cfg.Ideal() no draws are made and every candidate arrives at t = 0 in
/// candidate order.
ExchangeResult RunExchange(const ChannelConfig& cfg,
                           const std::vector<PeerProfile>& peers, Rng* rng);

}  // namespace senn::net
