#include "src/net/event_queue.h"

#include <algorithm>

namespace senn::net {

bool EventQueue::Later(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

void EventQueue::Schedule(double time, EventKind kind, int payload) {
  heap_.push_back(Event{time, next_seq_++, kind, payload});
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

Event EventQueue::PopNext() {
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

void EventQueue::Clear() {
  heap_.clear();
  next_seq_ = 0;
}

}  // namespace senn::net
