// Wireless channel model for the P2P messaging subsystem: per-transmission
// loss and per-link latency, drawn deterministically from a caller-supplied
// Rng stream so that every exchange is a pure function of (seed, query).
//
// The default configuration is the *ideal channel* — zero loss, zero
// latency — under which the messaging layer degenerates to the original
// instantaneous-and-lossless peer harvest (and draws nothing from the RNG),
// preserving historical results bit-for-bit.
#pragma once

#include "src/common/rng.h"

namespace senn::net {

/// Channel and protocol-timer configuration of one simulated radio
/// neighborhood.
struct ChannelConfig {
  /// Probability that any single transmission (REQ reception at one peer,
  /// or one REPLY) is lost. 0 = lossless.
  double loss = 0.0;
  /// Mean one-way per-link latency in seconds, exponentially distributed
  /// per transmission. 0 = instantaneous.
  double latency_mean_s = 0.0;
  /// How long the querying host collects replies after each broadcast
  /// before verifying with whatever arrived.
  double reply_timeout_s = 0.25;
  /// Rebroadcasts after a completely silent collection round.
  int max_retries = 2;

  /// True when the channel neither loses nor delays messages; the exchange
  /// then makes no RNG draws and completes instantaneously.
  bool Ideal() const { return loss <= 0.0 && latency_mean_s <= 0.0; }
};

/// One loss draw: true when the transmission is dropped.
inline bool DrawLost(const ChannelConfig& cfg, Rng* rng) {
  return cfg.loss > 0.0 && rng->Bernoulli(cfg.loss);
}

/// One per-link latency draw (seconds).
inline double DrawLatency(const ChannelConfig& cfg, Rng* rng) {
  return cfg.latency_mean_s > 0.0 ? rng->Exponential(cfg.latency_mean_s) : 0.0;
}

/// Round trip to the infrastructure (server) link: same latency model, two
/// legs, assumed lossless (base stations retransmit below our layer).
inline double DrawServerRtt(const ChannelConfig& cfg, Rng* rng) {
  return DrawLatency(cfg, rng) + DrawLatency(cfg, rng);
}

}  // namespace senn::net
