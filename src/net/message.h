// Wire-size model of the P2P messages a SENN query exchanges.
//
// Two message kinds cross the air (Section 3.1's protocol sketch): the
// query broadcast REQ(Q, k) and per-peer REPLY messages carrying the
// peer's cached result tuples. The byte model is deliberately simple —
// a fixed header that fits the addresses, the query point, k, and a
// sequence number, plus a per-POI tuple cost — and matches the accounting
// the pre-networking simulator used, so an ideal channel reproduces the
// historical p2p_bytes_per_query metric byte-for-byte.
#pragma once

#include <cstddef>

namespace senn::net {

enum class MessageKind {
  kRequest = 0,  // broadcast REQ(Q, k)
  kReply = 1,    // unicast REPLY(cached tuples)
};

/// Fixed per-message framing: src/dst ids, query point, k, and sequence
/// number all ride in the header.
inline constexpr double kMessageHeaderBytes = 32.0;

/// One POI tuple on the wire: id + two coordinates.
inline constexpr double kPoiWireBytes = 20.0;

/// REQ(Q, k): header only (the point and k fit in the header).
inline constexpr double RequestBytes() { return kMessageHeaderBytes; }

/// REPLY carrying `tuples` cached POIs.
inline constexpr double ReplyBytes(std::size_t tuples) {
  return kMessageHeaderBytes + kPoiWireBytes * static_cast<double>(tuples);
}

}  // namespace senn::net
