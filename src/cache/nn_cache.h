// Per-mobile-host nearest-neighbor result cache.
//
// The paper's cache policy (Section 4.1):
//  1. a host stores only the query location and all the *certain* nearest
//     neighbors of its most recent query, and
//  2. when a query must go to the server, the host asks for as many NNs as
//     its cache capacity allows (so the cached disk is as large as possible).
#pragma once

#include <cstdint>
#include <optional>

#include "src/core/types.h"

namespace senn::cache {

/// Single-entry NN cache with a capacity limit on the number of stored POIs.
class NnCache {
 public:
  /// `capacity` is the C_Size parameter: the number of POIs the host can
  /// keep (clamped to >= 1).
  explicit NnCache(int capacity);

  /// Replaces the cached result with `result`, truncating to capacity. The
  /// neighbors must be an exact ascending rank-prefix (see CachedResult);
  /// truncating a prefix preserves the invariant.
  void Store(core::CachedResult result);

  /// The cached result, or nullptr when nothing has been stored yet.
  const core::CachedResult* Get() const;

  /// Drops the cached result.
  void Clear();

  int capacity() const { return capacity_; }
  bool Empty() const { return !entry_.has_value() || entry_->Empty(); }

  /// Lifetime counters (diagnostics).
  uint64_t store_count() const { return store_count_; }

 private:
  int capacity_;
  std::optional<core::CachedResult> entry_;
  uint64_t store_count_ = 0;
};

}  // namespace senn::cache
