#include "src/cache/nn_cache.h"

#include <algorithm>

namespace senn::cache {

NnCache::NnCache(int capacity) : capacity_(std::max(capacity, 1)) {}

void NnCache::Store(core::CachedResult result) {
  if (static_cast<int>(result.neighbors.size()) > capacity_) {
    result.neighbors.resize(static_cast<size_t>(capacity_));
  }
  entry_ = std::move(result);
  ++store_count_;
}

const core::CachedResult* NnCache::Get() const {
  return entry_.has_value() ? &*entry_ : nullptr;
}

void NnCache::Clear() { entry_.reset(); }

}  // namespace senn::cache
